//! # netbatch-sim-engine
//!
//! A deterministic discrete-event simulation kernel, built as the substrate
//! for reproducing *"On the Feasibility of Dynamic Rescheduling on the Intel
//! Distributed Computing Platform"* (Middleware 2010). The paper's
//! evaluation runs on ASCA, Intel's in-house hybrid event/agent-based
//! simulator; this crate provides the equivalent open kernel:
//!
//! * a minute-resolution virtual clock ([`time::SimTime`]) — the unit every
//!   metric in the paper is reported in;
//! * a cancellable, deterministically tie-broken future-event set
//!   ([`queue::EventQueue`]);
//! * a driver loop with horizons and step budgets
//!   ([`executor::Executor`]);
//! * per-minute sampling cadence helpers ([`sampler::PeriodicSampler`]),
//!   mirroring ASCA's "sample each minute, aggregate per 100 minutes"
//!   methodology;
//! * reproducible, splittable randomness ([`rng::DetRng`]).
//!
//! Everything upstream (cluster model, workloads, policies) is pure logic on
//! top of these primitives, which is what makes whole-trace simulations
//! bit-for-bit reproducible from a seed.
//!
//! ## Example
//!
//! ```
//! use netbatch_sim_engine::prelude::*;
//!
//! struct Ping(u32);
//! impl Handler for Ping {
//!     type Event = &'static str;
//!     fn handle(
//!         &mut self,
//!         now: SimTime,
//!         event: &'static str,
//!         sched: &mut Scheduler<'_, &'static str>,
//!     ) -> Control {
//!         assert_eq!(event, "ping");
//!         self.0 += 1;
//!         if self.0 < 5 {
//!             sched.schedule_in(SimDuration::HOUR, "ping");
//!         }
//!         Control::Continue
//!     }
//! }
//!
//! let mut ex = Executor::new();
//! ex.seed_event(SimTime::ZERO, "ping");
//! let mut ping = Ping(0);
//! let stats = ex.run(&mut ping);
//! assert_eq!(ping.0, 5);
//! assert_eq!(stats.end_time, SimTime::from_minutes(4 * 60));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod epoch;
pub mod executor;
pub mod observe;
pub mod queue;
pub mod rng;
pub mod sampler;
pub mod time;

/// Convenient glob-import surface for downstream crates.
pub mod prelude {
    pub use crate::executor::{Control, Executor, Handler, RunOutcome, RunStats, Scheduler};
    pub use crate::observe::EventLabel;
    pub use crate::queue::{EventId, EventQueue};
    pub use crate::rng::DetRng;
    pub use crate::sampler::PeriodicSampler;
    pub use crate::time::{SimDuration, SimTime};
}
