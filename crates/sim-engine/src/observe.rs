//! Observer-facing event metadata and label-keyed accounting.
//!
//! The kernel is generic over the event alphabet, so it cannot name event
//! kinds itself. Simulations that expose an observer layer (trace
//! recorders, online invariant checkers, stats probes) implement
//! [`EventLabel`] for their alphabet; observers then group, count and time
//! events by the returned label without knowing the concrete enum.
//!
//! Two accounting helpers live beside the trait, deliberately split by
//! determinism domain:
//!
//! * [`LabelCounter`] counts events per label in **simulation** domain —
//!   same seed, same counts — so its state is safe to render into traces,
//!   debug output and golden fixtures;
//! * [`LabelTimer`] measures **host wall-clock** time per label. Its
//!   measurements differ on every run by construction, so its `Debug`
//!   impl redacts them: a timer embedded in an observer can never leak
//!   nondeterministic nanos into a deterministic rendering.

use std::collections::BTreeMap;
use std::time::Instant;

/// A stable, human-readable label per event kind.
///
/// Labels must be `'static` (they key counters and appear in trace lines)
/// and must not depend on the event's payload — two events of the same
/// kind return the same label.
///
/// # Examples
///
/// ```
/// use netbatch_sim_engine::observe::EventLabel;
///
/// #[derive(Clone, Copy)]
/// enum Ev { Tick, Done }
/// impl EventLabel for Ev {
///     fn label(&self) -> &'static str {
///         match self {
///             Ev::Tick => "tick",
///             Ev::Done => "done",
///         }
///     }
/// }
/// assert_eq!(Ev::Tick.label(), "tick");
/// ```
pub trait EventLabel {
    /// The label for this event's kind.
    fn label(&self) -> &'static str;
}

/// Deterministic per-label event counter (simulation domain).
///
/// Keyed by `&'static str` labels through a `BTreeMap`, so iteration —
/// and any `Debug`/trace rendering built on it — is byte-stable across
/// same-seed runs. This is the half of a stats probe that **may** appear
/// in golden fixtures.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LabelCounter {
    counts: BTreeMap<&'static str, u64>,
}

impl LabelCounter {
    /// An empty counter.
    pub fn new() -> Self {
        LabelCounter::default()
    }

    /// Increments the count for `label`.
    pub fn inc(&mut self, label: &'static str) {
        *self.counts.entry(label).or_insert(0) += 1;
    }

    /// The count for `label` (0 if never seen).
    pub fn get(&self, label: &str) -> u64 {
        self.counts.get(label).copied().unwrap_or(0)
    }

    /// All counts, in label order.
    pub fn counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.counts
    }

    /// Sum over all labels.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }
}

/// Host wall-clock span timer per label. **Nondeterministic by nature.**
///
/// [`LabelTimer::start`] closes any open span and opens a new one for the
/// given label; [`LabelTimer::stop`] closes the open span. Accumulated
/// nanos are only reachable through the explicit accessors — the `Debug`
/// impl prints a redaction marker instead, so embedding a timer in an
/// observer whose `Debug` output feeds determinism suites or golden
/// fixtures is safe by construction.
#[derive(Clone, Default)]
pub struct LabelTimer {
    nanos: BTreeMap<&'static str, u128>,
    open: Option<(&'static str, Instant)>,
}

impl std::fmt::Debug for LabelTimer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the measured nanos: they differ on every run.
        write!(f, "LabelTimer(wall-clock timings redacted)")
    }
}

impl LabelTimer {
    /// An idle timer.
    pub fn new() -> Self {
        LabelTimer::default()
    }

    /// Closes the open span (if any) and starts timing `label`.
    pub fn start(&mut self, label: &'static str) {
        self.stop();
        self.open = Some((label, Instant::now()));
    }

    /// Closes the open span, attributing its elapsed time to its label.
    pub fn stop(&mut self) {
        if let Some((label, started)) = self.open.take() {
            *self.nanos.entry(label).or_insert(0) += started.elapsed().as_nanos();
        }
    }

    /// Accumulated nanos for `label` (0 if never timed).
    pub fn nanos(&self, label: &str) -> u128 {
        self.nanos.get(label).copied().unwrap_or(0)
    }

    /// Accumulated nanos per label, in label order.
    pub fn all_nanos(&self) -> &BTreeMap<&'static str, u128> {
        &self.nanos
    }

    /// Sum over all labels.
    pub fn total_nanos(&self) -> u128 {
        self.nanos.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Copy)]
    enum Ev {
        A,
        B(u32),
    }

    impl EventLabel for Ev {
        fn label(&self) -> &'static str {
            match self {
                Ev::A => "a",
                Ev::B(_) => "b",
            }
        }
    }

    #[test]
    fn counter_counts_per_label() {
        let mut c = LabelCounter::new();
        c.inc("a");
        c.inc("a");
        c.inc("b");
        assert_eq!(c.get("a"), 2);
        assert_eq!(c.get("b"), 1);
        assert_eq!(c.get("missing"), 0);
        assert_eq!(c.total(), 3);
        // BTreeMap keying: label order, deterministically.
        let labels: Vec<_> = c.counts().keys().copied().collect();
        assert_eq!(labels, vec!["a", "b"]);
    }

    #[test]
    fn timer_attributes_spans_and_redacts_debug() {
        let mut t = LabelTimer::new();
        t.start("x");
        t.start("y"); // implicitly closes "x"
        t.stop();
        t.stop(); // idempotent when idle
        assert!(t.all_nanos().keys().eq(["x", "y"].iter()));
        assert_eq!(t.nanos("z"), 0);
        assert!(t.total_nanos() >= t.nanos("x"));
        // The Debug rendering must not contain any digits of the measured
        // timings — that is the whole point of the split.
        let dbg = format!("{t:?}");
        assert_eq!(dbg, "LabelTimer(wall-clock timings redacted)");
    }

    #[test]
    fn labels_ignore_payload() {
        assert_eq!(Ev::A.label(), "a");
        for payload in [1u32, 2, u32::MAX] {
            let Ev::B(echoed) = Ev::B(payload) else {
                unreachable!()
            };
            assert_eq!(echoed, payload);
            assert_eq!(Ev::B(payload).label(), "b");
        }
    }
}
