//! Observer-facing event metadata.
//!
//! The kernel is generic over the event alphabet, so it cannot name event
//! kinds itself. Simulations that expose an observer layer (trace
//! recorders, online invariant checkers, stats probes) implement
//! [`EventLabel`] for their alphabet; observers then group, count and time
//! events by the returned label without knowing the concrete enum.

/// A stable, human-readable label per event kind.
///
/// Labels must be `'static` (they key counters and appear in trace lines)
/// and must not depend on the event's payload — two events of the same
/// kind return the same label.
///
/// # Examples
///
/// ```
/// use netbatch_sim_engine::observe::EventLabel;
///
/// #[derive(Clone, Copy)]
/// enum Ev { Tick, Done }
/// impl EventLabel for Ev {
///     fn label(&self) -> &'static str {
///         match self {
///             Ev::Tick => "tick",
///             Ev::Done => "done",
///         }
///     }
/// }
/// assert_eq!(Ev::Tick.label(), "tick");
/// ```
pub trait EventLabel {
    /// The label for this event's kind.
    fn label(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Copy)]
    enum Ev {
        A,
        B(u32),
    }

    impl EventLabel for Ev {
        fn label(&self) -> &'static str {
            match self {
                Ev::A => "a",
                Ev::B(_) => "b",
            }
        }
    }

    #[test]
    fn labels_ignore_payload() {
        assert_eq!(Ev::A.label(), "a");
        for payload in [1u32, 2, u32::MAX] {
            let Ev::B(echoed) = Ev::B(payload) else {
                unreachable!()
            };
            assert_eq!(echoed, payload);
            assert_eq!(Ev::B(payload).label(), "b");
        }
    }
}
