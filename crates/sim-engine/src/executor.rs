//! The simulation driver: clock + event queue + handler loop.
//!
//! The executor owns the virtual clock and the pending-event set and feeds
//! events to a [`Handler`] in deterministic order. Handlers schedule further
//! events through the [`Scheduler`] view they receive, which also enforces
//! causality (no scheduling into the past).

use std::fmt;

use crate::queue::{EventId, EventQueue};
use crate::time::{SimDuration, SimTime};

/// The handler's verdict after processing one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Control {
    /// Keep running.
    #[default]
    Continue,
    /// Stop the run after this event; [`Executor::run`] returns.
    Stop,
}

/// A simulation component that reacts to events.
///
/// Implementations receive each event together with a [`Scheduler`] through
/// which they may schedule or cancel future events.
pub trait Handler {
    /// The event alphabet of this simulation.
    type Event;

    /// Processes one event occurring at `now`.
    fn handle(
        &mut self,
        now: SimTime,
        event: Self::Event,
        sched: &mut Scheduler<'_, Self::Event>,
    ) -> Control;
}

/// The event-scheduling capability handed to handlers.
///
/// Wraps the executor's queue and clock so that handlers can only schedule
/// into the present or future.
pub struct Scheduler<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
}

impl<E> fmt::Debug for Scheduler<'_, E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .finish()
    }
}

impl<'a, E> Scheduler<'a, E> {
    /// Wraps a queue in a scheduler view at virtual time `now`.
    ///
    /// Exists for external drivers (the sharded simulation coordinator)
    /// that run a [`Handler`] without an [`Executor`]; the causality
    /// guarantees hold exactly as they do inside the executor loop.
    #[doc(hidden)]
    pub fn for_queue(now: SimTime, queue: &'a mut EventQueue<E>) -> Self {
        Scheduler { now, queue }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventId {
        self.queue.schedule(self.now + delay, event)
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — that would violate causality and
    /// always indicates a bug in the calling model.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule event at {at}, current time is {}",
            self.now
        );
        self.queue.schedule(at, event)
    }

    /// Cancels a previously scheduled event. Returns `true` if it was still
    /// pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Number of events currently pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// Why an [`Executor::run`] call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Drained,
    /// The handler returned [`Control::Stop`].
    Stopped,
    /// The time horizon was reached with events still pending.
    HorizonReached,
    /// The step budget was exhausted with events still pending.
    StepBudgetExhausted,
}

/// Summary statistics for a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Why the run ended.
    pub outcome: RunOutcome,
    /// Number of events delivered to the handler.
    pub events_processed: u64,
    /// Virtual time when the run ended.
    pub end_time: SimTime,
}

/// The simulation executor: owns the clock and the future-event set.
///
/// # Examples
///
/// ```
/// use netbatch_sim_engine::executor::{Control, Executor, Handler, Scheduler};
/// use netbatch_sim_engine::time::{SimDuration, SimTime};
///
/// struct Counter(u32);
/// impl Handler for Counter {
///     type Event = ();
///     fn handle(&mut self, _now: SimTime, _e: (), sched: &mut Scheduler<'_, ()>) -> Control {
///         self.0 += 1;
///         if self.0 < 3 {
///             sched.schedule_in(SimDuration::MINUTE, ());
///         }
///         Control::Continue
///     }
/// }
///
/// let mut ex = Executor::new();
/// ex.seed_event(SimTime::ZERO, ());
/// let mut counter = Counter(0);
/// let stats = ex.run(&mut counter);
/// assert_eq!(counter.0, 3);
/// assert_eq!(stats.end_time, SimTime::from_minutes(2));
/// ```
pub struct Executor<E> {
    queue: EventQueue<E>,
    now: SimTime,
    horizon: SimTime,
    step_budget: u64,
    events_processed: u64,
}

impl<E> Executor<E> {
    /// Creates an executor starting at time zero with no horizon or step
    /// limit.
    pub fn new() -> Self {
        Executor {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            horizon: SimTime::MAX,
            step_budget: u64::MAX,
            events_processed: 0,
        }
    }

    /// Creates an executor whose queue (and its auxiliary id sets) is
    /// pre-sized for `capacity` pending events, so a simulation that seeds
    /// its whole workload up front performs no queue growth in the loop.
    pub fn with_capacity(capacity: usize) -> Self {
        Executor {
            queue: EventQueue::with_capacity(capacity),
            ..Executor::new()
        }
    }

    /// Creates an executor driving the given queue — used to run a
    /// simulation on the reference heap backend
    /// ([`EventQueue::with_reference_heap`]) for differential testing.
    pub fn with_queue(queue: EventQueue<E>) -> Self {
        Executor {
            queue,
            ..Executor::new()
        }
    }

    /// Sets an inclusive time horizon: events strictly after it are not
    /// delivered.
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = horizon;
        self
    }

    /// Sets a maximum number of events to deliver across all `run` calls —
    /// a backstop against accidental event storms.
    pub fn with_step_budget(mut self, budget: u64) -> Self {
        self.step_budget = budget;
        self
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Schedules an event before the run starts (or between runs).
    pub fn seed_event(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot seed event at {at}, current time is {}",
            self.now
        );
        self.queue.schedule(at, event)
    }

    /// Runs the event loop until the queue drains, the handler stops it, or
    /// a limit is hit.
    pub fn run<H: Handler<Event = E>>(&mut self, handler: &mut H) -> RunStats {
        loop {
            if self.events_processed >= self.step_budget {
                return self.stats(RunOutcome::StepBudgetExhausted);
            }
            let Some(next_time) = self.queue.peek_time() else {
                return self.stats(RunOutcome::Drained);
            };
            if next_time > self.horizon {
                self.now = self.horizon;
                return self.stats(RunOutcome::HorizonReached);
            }
            let (time, event) = self.queue.pop().expect("peeked event exists");
            debug_assert!(time >= self.now, "event queue delivered out of order");
            self.now = time;
            self.events_processed += 1;
            let mut sched = Scheduler {
                now: self.now,
                queue: &mut self.queue,
            };
            if handler.handle(time, event, &mut sched) == Control::Stop {
                return self.stats(RunOutcome::Stopped);
            }
        }
    }

    fn stats(&self, outcome: RunOutcome) -> RunStats {
        RunStats {
            outcome,
            events_processed: self.events_processed,
            end_time: self.now,
        }
    }
}

impl<E> Default for Executor<E> {
    fn default() -> Self {
        Executor::new()
    }
}

impl<E> fmt::Debug for Executor<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Executor")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick,
        Stop,
    }

    struct Recorder {
        seen: Vec<(u64, &'static str)>,
    }

    impl Handler for Recorder {
        type Event = Ev;

        fn handle(&mut self, now: SimTime, event: Ev, _s: &mut Scheduler<'_, Ev>) -> Control {
            match event {
                Ev::Tick => {
                    self.seen.push((now.as_minutes(), "tick"));
                    Control::Continue
                }
                Ev::Stop => {
                    self.seen.push((now.as_minutes(), "stop"));
                    Control::Stop
                }
            }
        }
    }

    #[test]
    fn drains_in_order() {
        let mut ex = Executor::new();
        ex.seed_event(SimTime::from_minutes(5), Ev::Tick);
        ex.seed_event(SimTime::from_minutes(1), Ev::Tick);
        let mut r = Recorder { seen: vec![] };
        let stats = ex.run(&mut r);
        assert_eq!(stats.outcome, RunOutcome::Drained);
        assert_eq!(r.seen, vec![(1, "tick"), (5, "tick")]);
        assert_eq!(stats.end_time, SimTime::from_minutes(5));
    }

    #[test]
    fn stop_control_halts_run() {
        let mut ex = Executor::new();
        ex.seed_event(SimTime::from_minutes(1), Ev::Stop);
        ex.seed_event(SimTime::from_minutes(2), Ev::Tick);
        let mut r = Recorder { seen: vec![] };
        let stats = ex.run(&mut r);
        assert_eq!(stats.outcome, RunOutcome::Stopped);
        assert_eq!(r.seen.len(), 1);
    }

    #[test]
    fn horizon_is_inclusive() {
        let mut ex = Executor::new().with_horizon(SimTime::from_minutes(10));
        ex.seed_event(SimTime::from_minutes(10), Ev::Tick);
        ex.seed_event(SimTime::from_minutes(11), Ev::Tick);
        let mut r = Recorder { seen: vec![] };
        let stats = ex.run(&mut r);
        assert_eq!(stats.outcome, RunOutcome::HorizonReached);
        assert_eq!(r.seen, vec![(10, "tick")]);
        assert_eq!(stats.end_time, SimTime::from_minutes(10));
    }

    #[test]
    fn step_budget_bounds_events() {
        struct Bomb;
        impl Handler for Bomb {
            type Event = ();
            fn handle(&mut self, _n: SimTime, _e: (), s: &mut Scheduler<'_, ()>) -> Control {
                s.schedule_in(SimDuration::MINUTE, ());
                Control::Continue
            }
        }
        let mut ex = Executor::new().with_step_budget(100);
        ex.seed_event(SimTime::ZERO, ());
        let stats = ex.run(&mut Bomb);
        assert_eq!(stats.outcome, RunOutcome::StepBudgetExhausted);
        assert_eq!(stats.events_processed, 100);
    }

    #[test]
    fn handler_can_chain_events() {
        struct Chain {
            fired: Vec<u64>,
        }
        impl Handler for Chain {
            type Event = u64;
            fn handle(&mut self, now: SimTime, e: u64, s: &mut Scheduler<'_, u64>) -> Control {
                self.fired.push(now.as_minutes());
                if e > 0 {
                    s.schedule_in(SimDuration::from_minutes(10), e - 1);
                }
                Control::Continue
            }
        }
        let mut ex = Executor::new();
        ex.seed_event(SimTime::ZERO, 3u64);
        let mut c = Chain { fired: vec![] };
        ex.run(&mut c);
        assert_eq!(c.fired, vec![0, 10, 20, 30]);
    }

    #[test]
    fn scheduler_cancel_works_from_handler() {
        struct Canceller {
            pending: Option<EventId>,
            delivered: u32,
        }
        impl Handler for Canceller {
            type Event = u8;
            fn handle(&mut self, _n: SimTime, e: u8, s: &mut Scheduler<'_, u8>) -> Control {
                self.delivered += 1;
                if e == 0 {
                    // First event cancels the second.
                    let id = self.pending.take().expect("id stored");
                    assert!(s.cancel(id));
                }
                Control::Continue
            }
        }
        let mut ex = Executor::new();
        ex.seed_event(SimTime::from_minutes(1), 0u8);
        let victim = ex.seed_event(SimTime::from_minutes(2), 1u8);
        let mut h = Canceller {
            pending: Some(victim),
            delivered: 0,
        };
        let stats = ex.run(&mut h);
        assert_eq!(h.delivered, 1);
        assert_eq!(stats.outcome, RunOutcome::Drained);
    }

    #[test]
    #[should_panic(expected = "cannot schedule event at")]
    fn scheduling_into_past_panics() {
        struct PastScheduler;
        impl Handler for PastScheduler {
            type Event = ();
            fn handle(&mut self, _n: SimTime, _e: (), s: &mut Scheduler<'_, ()>) -> Control {
                s.schedule_at(SimTime::ZERO, ());
                Control::Continue
            }
        }
        let mut ex = Executor::new();
        ex.seed_event(SimTime::from_minutes(5), ());
        ex.run(&mut PastScheduler);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        struct Collect {
            seen: Vec<(u64, u32)>,
        }
        impl Handler for Collect {
            type Event = u32;
            fn handle(&mut self, now: SimTime, e: u32, _s: &mut Scheduler<'_, u32>) -> Control {
                self.seen.push((now.as_minutes(), e));
                Control::Continue
            }
        }

        proptest! {
            /// Arbitrary seeded schedules are delivered in non-decreasing
            /// time order with FIFO ties, exactly once each.
            #[test]
            fn prop_delivery_order(times in proptest::collection::vec(0u64..10_000, 1..150)) {
                let mut ex = Executor::new();
                for (i, &t) in times.iter().enumerate() {
                    ex.seed_event(SimTime::from_minutes(t), i as u32);
                }
                let mut h = Collect { seen: vec![] };
                let stats = ex.run(&mut h);
                prop_assert_eq!(stats.outcome, RunOutcome::Drained);
                prop_assert_eq!(h.seen.len(), times.len());
                for w in h.seen.windows(2) {
                    prop_assert!(w[0].0 <= w[1].0, "time order violated");
                    if w[0].0 == w[1].0 {
                        prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
                    }
                }
                let mut delivered: Vec<u32> = h.seen.iter().map(|&(_, e)| e).collect();
                delivered.sort_unstable();
                prop_assert_eq!(delivered, (0..times.len() as u32).collect::<Vec<_>>());
            }

            /// A horizon never lets an event past it through, and the
            /// executor's clock never exceeds the horizon.
            #[test]
            fn prop_horizon_is_respected(
                times in proptest::collection::vec(0u64..10_000, 1..100),
                horizon in 0u64..10_000,
            ) {
                let mut ex = Executor::new().with_horizon(SimTime::from_minutes(horizon));
                for (i, &t) in times.iter().enumerate() {
                    ex.seed_event(SimTime::from_minutes(t), i as u32);
                }
                let mut h = Collect { seen: vec![] };
                let stats = ex.run(&mut h);
                prop_assert!(h.seen.iter().all(|&(t, _)| t <= horizon));
                prop_assert!(stats.end_time <= SimTime::from_minutes(horizon));
                let expected = times.iter().filter(|&&t| t <= horizon).count();
                prop_assert_eq!(h.seen.len(), expected);
            }
        }
    }

    #[test]
    fn run_resumes_after_stop() {
        let mut ex = Executor::new();
        ex.seed_event(SimTime::from_minutes(1), Ev::Stop);
        ex.seed_event(SimTime::from_minutes(2), Ev::Tick);
        let mut r = Recorder { seen: vec![] };
        assert_eq!(ex.run(&mut r).outcome, RunOutcome::Stopped);
        assert_eq!(ex.run(&mut r).outcome, RunOutcome::Drained);
        assert_eq!(r.seen, vec![(1, "stop"), (2, "tick")]);
    }
}
