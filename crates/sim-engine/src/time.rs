//! Virtual time for the simulation kernel.
//!
//! The paper reports every time-based metric in **minutes** (job runtimes,
//! suspension times, completion times, the 500,000-minute trace horizon), so
//! the kernel's clock is an integer minute counter. Using integers keeps the
//! event queue total-ordered and the simulation bit-for-bit deterministic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An absolute instant in simulated time, measured in whole minutes since
/// the start of the simulation.
///
/// # Examples
///
/// ```
/// use netbatch_sim_engine::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_hours(2);
/// assert_eq!(t.as_minutes(), 120);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `minutes` minutes after the start of the simulation.
    pub const fn from_minutes(minutes: u64) -> Self {
        SimTime(minutes)
    }

    /// Returns the number of whole minutes since the start of the simulation.
    pub const fn as_minutes(self) -> u64 {
        self.0
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`; saturates to
    /// zero in release builds.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            earlier.0 <= self.0,
            "SimTime::since called with a later instant: {earlier} > {self}"
        );
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the duration between the two instants regardless of order.
    pub fn abs_diff(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.abs_diff(other.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}m", self.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl From<u64> for SimTime {
    fn from(minutes: u64) -> Self {
        SimTime(minutes)
    }
}

/// A span of simulated time, measured in whole minutes.
///
/// # Examples
///
/// ```
/// use netbatch_sim_engine::time::SimDuration;
///
/// let d = SimDuration::from_days(1) + SimDuration::from_hours(1);
/// assert_eq!(d.as_minutes(), 25 * 60);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// One minute, the kernel's clock resolution (ASCA samples per minute).
    pub const MINUTE: SimDuration = SimDuration(1);

    /// One hour.
    pub const HOUR: SimDuration = SimDuration(60);

    /// One day.
    pub const DAY: SimDuration = SimDuration(24 * 60);

    /// One week — the length of the paper's busy evaluation window.
    pub const WEEK: SimDuration = SimDuration(7 * 24 * 60);

    /// Creates a duration of `minutes` minutes.
    pub const fn from_minutes(minutes: u64) -> Self {
        SimDuration(minutes)
    }

    /// Creates a duration of `hours` hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 60)
    }

    /// Creates a duration of `days` days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * 24 * 60)
    }

    /// Returns the number of whole minutes in this duration.
    pub const fn as_minutes(self) -> u64 {
        self.0
    }

    /// Returns this duration as a floating-point number of minutes, for
    /// metric arithmetic.
    pub const fn as_minutes_f64(self) -> f64 {
        self.0 as f64
    }

    /// Returns true if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the duration by an integer scale factor.
    pub const fn scaled(self, factor: u64) -> SimDuration {
        SimDuration(self.0 * factor)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}m", self.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl From<u64> for SimDuration {
    fn from(minutes: u64) -> Self {
        SimDuration(minutes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_minutes(100);
        let d = SimDuration::from_minutes(40);
        assert_eq!((t + d).since(t), d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn duration_constants_are_consistent() {
        assert_eq!(SimDuration::HOUR, SimDuration::MINUTE.scaled(60));
        assert_eq!(SimDuration::DAY, SimDuration::HOUR.scaled(24));
        assert_eq!(SimDuration::WEEK, SimDuration::DAY.scaled(7));
        assert_eq!(SimDuration::WEEK.as_minutes(), 10_080);
    }

    #[test]
    fn since_saturates_in_release() {
        let a = SimTime::from_minutes(10);
        let b = SimTime::from_minutes(20);
        assert_eq!(b.since(a).as_minutes(), 10);
    }

    #[test]
    fn abs_diff_is_symmetric() {
        let a = SimTime::from_minutes(3);
        let b = SimTime::from_minutes(8);
        assert_eq!(a.abs_diff(b), b.abs_diff(a));
        assert_eq!(a.abs_diff(b).as_minutes(), 5);
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert_eq!(SimTime::MAX.checked_add(SimDuration::MINUTE), None);
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::HOUR),
            Some(SimTime::from_minutes(60))
        );
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(SimTime::MAX.saturating_add(SimDuration::DAY), SimTime::MAX);
        assert_eq!(
            SimDuration::from_minutes(5).saturating_sub(SimDuration::from_minutes(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn durations_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_minutes).sum();
        assert_eq!(total.as_minutes(), 10);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_minutes(7).to_string(), "t+7m");
        assert_eq!(SimDuration::from_hours(1).to_string(), "60m");
    }

    #[test]
    fn ordering_follows_minutes() {
        assert!(SimTime::from_minutes(1) < SimTime::from_minutes(2));
        assert!(SimDuration::from_minutes(59) < SimDuration::HOUR);
    }
}
