//! The pending-event set: a cancellable priority queue ordered by time.
//!
//! Determinism is the load-bearing property here. Two events scheduled for
//! the same minute are delivered in the order they were scheduled (FIFO by
//! sequence number), so a simulation run is a pure function of its inputs
//! and seed. Cancellation is lazy: cancelled entries stay in the heap and
//! are skipped on pop, which keeps both operations `O(log n)`.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::fmt;

use crate::time::SimTime;

/// A handle identifying a scheduled event, usable to cancel it later.
///
/// Handles are unique per [`EventQueue`] for the queue's lifetime; they are
/// never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    /// Returns the raw sequence number, mainly for logging.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ev#{}", self.0)
    }
}

struct Entry<E> {
    time: SimTime,
    id: EventId,
    event: E,
}

// Reverse ordering: BinaryHeap is a max-heap, we want the earliest
// (time, id) on top.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.id == other.id
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.id).cmp(&(self.time, self.id))
    }
}

/// A deterministic, cancellable future-event set.
///
/// # Examples
///
/// ```
/// use netbatch_sim_engine::queue::EventQueue;
/// use netbatch_sim_engine::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_minutes(5), "later");
/// q.schedule(SimTime::from_minutes(1), "sooner");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.as_minutes(), e), (1, "sooner"));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Ids scheduled but not yet delivered or cancelled.
    pending: HashSet<EventId>,
    /// Ids cancelled but still physically present in the heap.
    cancelled: HashSet<EventId>,
    next_id: u64,
    scheduled_total: u64,
    cancelled_total: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            cancelled: HashSet::new(),
            next_id: 0,
            scheduled_total: 0,
            cancelled_total: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` pending events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            ..EventQueue::new()
        }
    }

    /// Schedules `event` to fire at `time` and returns a handle that can be
    /// passed to [`EventQueue::cancel`].
    ///
    /// Events scheduled for the same instant fire in scheduling order.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.scheduled_total += 1;
        self.pending.insert(id);
        self.heap.push(Entry { time, id, event });
        id
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired or been cancelled.
    /// Cancelling an already-delivered handle is a no-op returning `false`.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if !self.pending.remove(&id) {
            return false;
        }
        self.cancelled.insert(id);
        self.cancelled_total += 1;
        true
    }

    /// Removes and returns the earliest pending event, skipping cancelled
    /// entries. Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            self.pending.remove(&entry.id);
            return Some((entry.time, entry.event));
        }
        None
    }

    /// Returns the time of the earliest pending (non-cancelled) event
    /// without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.id) {
                let entry = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&entry.id);
            } else {
                return Some(entry.time);
            }
        }
        None
    }

    /// Returns the number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total number of events ever cancelled on this queue.
    pub fn cancelled_total(&self) -> u64 {
        self.cancelled_total
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.len())
            .field("scheduled_total", &self.scheduled_total)
            .field("cancelled_total", &self.cancelled_total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_minutes(30), 'c');
        q.schedule(SimTime::from_minutes(10), 'a');
        q.schedule(SimTime::from_minutes(20), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_minutes(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_minutes(1), "x");
        q.schedule(SimTime::from_minutes(2), "y");
        assert!(q.cancel(id));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("y"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn double_cancel_is_noop() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_minutes(1), ());
        assert!(q.cancel(id));
        assert!(!q.cancel(id));
        assert_eq!(q.cancelled_total(), 1);
    }

    #[test]
    fn cancel_unknown_id_is_rejected() {
        let mut q = EventQueue::<()>::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn cancel_after_delivery_is_noop() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_minutes(1), "x");
        assert!(q.pop().is_some());
        assert!(!q.cancel(id));
        assert_eq!(q.len(), 0);
        assert_eq!(q.cancelled_total(), 0);
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let first = q.schedule(SimTime::from_minutes(1), "x");
        q.schedule(SimTime::from_minutes(9), "y");
        q.cancel(first);
        assert_eq!(q.peek_time(), Some(SimTime::from_minutes(9)));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q = EventQueue::<u8>::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn debug_is_nonempty() {
        let q = EventQueue::<u8>::new();
        assert!(!format!("{q:?}").is_empty());
    }

    proptest! {
        /// Popping yields a non-decreasing sequence of times, regardless of
        /// insertion order.
        #[test]
        fn prop_pop_order_is_monotone(times in proptest::collection::vec(0u64..10_000, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_minutes(t), i);
            }
            let mut last = SimTime::ZERO;
            let mut count = 0usize;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
                count += 1;
            }
            prop_assert_eq!(count, times.len());
        }

        /// Same-time events preserve scheduling order even mixed with other
        /// times (stability).
        #[test]
        fn prop_same_time_fifo(times in proptest::collection::vec(0u64..50, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_minutes(t), i);
            }
            let mut last_seq_at_time: std::collections::HashMap<u64, usize> = Default::default();
            while let Some((t, seq)) = q.pop() {
                if let Some(&prev) = last_seq_at_time.get(&t.as_minutes()) {
                    prop_assert!(seq > prev);
                }
                last_seq_at_time.insert(t.as_minutes(), seq);
            }
        }

        /// len() always equals scheduled - popped - cancelled.
        #[test]
        fn prop_len_accounting(ops in proptest::collection::vec(0u8..3, 1..300)) {
            let mut q = EventQueue::new();
            let mut ids = Vec::new();
            let mut live: i64 = 0;
            for (i, op) in ops.iter().enumerate() {
                match op {
                    0 => {
                        ids.push(q.schedule(SimTime::from_minutes(i as u64 % 17), i));
                        live += 1;
                    }
                    1 => {
                        if let Some(id) = ids.pop() {
                            if q.cancel(id) {
                                live -= 1;
                            }
                        }
                    }
                    _ => {
                        if q.pop().is_some() {
                            live -= 1;
                            // popped id may still be in `ids`; cancelling it later is a no-op
                        }
                    }
                }
                prop_assert_eq!(q.len() as i64, live.max(0));
            }
        }
    }
}
