//! The pending-event set: a cancellable priority queue ordered by time.
//!
//! Determinism is the load-bearing property here. Two events scheduled for
//! the same minute are delivered in the order they were scheduled (FIFO by
//! sequence number), so a simulation run is a pure function of its inputs
//! and seed. Cancellation is lazy: cancelled entries stay in the backend
//! and are skipped on pop; when they outnumber half the pending set the
//! queue compacts, so garbage stays proportional to the live event count.
//!
//! Two backends implement the same contract:
//!
//! * the default **hierarchical timer wheel** — `SimTime` is minute-granular,
//!   so near-future events bucket naturally into a 1024-minute level-0 wheel,
//!   with a level-1 wheel of 1024-minute blocks above it and a `BTreeMap`
//!   overflow for timers beyond the ~2-simulated-year level-1 span. Schedule
//!   and pop are O(1) amortized instead of the heap's O(log n);
//! * the original **binary heap**, kept as a reference implementation
//!   ([`EventQueue::with_reference_heap`]) and differential-tested against
//!   the wheel so the (time, sequence) delivery order provably matches.
//!
//! Why FIFO survives the wheel's cascading: levels are *block-aligned*, not
//! distance-based. Level 0 only ever holds minutes of the block the cursor
//! is in; a level-1 slot is dumped into level 0 at the instant the cursor
//! enters its block — strictly before any later (higher-sequence) entry can
//! be scheduled directly into level 0 for that block — and the overflow for
//! a superblock drains, in time order, when the cursor enters the
//! superblock. Every container therefore appends same-minute entries in
//! sequence order, and every dump preserves relative order, so a slot is
//! always popped front-to-back in exactly (time, sequence) order.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, HashSet, VecDeque};
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

use crate::time::SimTime;

/// A handle identifying a scheduled event, usable to cancel it later.
///
/// Handles are unique per [`EventQueue`] for the queue's lifetime; they are
/// never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    /// Returns the raw sequence number, mainly for logging.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ev#{}", self.0)
    }
}

/// A fast hasher for the pending/cancelled id sets.
///
/// [`EventId`]s are sequential integers, so SipHash's DoS resistance buys
/// nothing here while dominating the cancel/pop profile. This is the
/// classic multiply–xorshift integer finalizer (the SplitMix64 constant),
/// hand-rolled because the workspace builds fully offline — no `fxhash`/
/// `ahash` dependency is available.
#[derive(Default)]
struct SeqHasher(u64);

impl Hasher for SeqHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-integer keys (unused by EventId): FNV-1a.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        let mut h = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 29;
        self.0 = h;
    }
}

type SeqBuild = BuildHasherDefault<SeqHasher>;
type IdSet = HashSet<EventId, SeqBuild>;

struct Entry<E> {
    time: SimTime,
    id: EventId,
    event: E,
}

// Reverse ordering: BinaryHeap is a max-heap, we want the earliest
// (time, id) on top.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.id == other.id
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.id).cmp(&(self.time, self.id))
    }
}

/// Level-0/level-1 wheel resolution: 1024 slots per level.
const LEVEL_BITS: u32 = 10;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Minutes covered by one level-0 *block* (~17 simulated hours).
const SPAN_L0: u64 = 1 << LEVEL_BITS;
/// Minutes covered by one level-1 *superblock* (~2 simulated years).
const SPAN_L1: u64 = 1 << (2 * LEVEL_BITS);
/// Words in a level occupancy bitmap.
const OCC_WORDS: usize = SLOTS / 64;

/// Returns the first set bit at or after `from`, or `None`.
fn bits_next(occ: &[u64; OCC_WORDS], from: usize) -> Option<usize> {
    let mut w = from >> 6;
    if w >= OCC_WORDS {
        return None;
    }
    let mut word = occ[w] & (!0u64 << (from & 63));
    loop {
        if word != 0 {
            return Some((w << 6) + word.trailing_zeros() as usize);
        }
        w += 1;
        if w == OCC_WORDS {
            return None;
        }
        word = occ[w];
    }
}

/// The hierarchical timer wheel backend.
///
/// `l0` holds one `VecDeque` per minute of the cursor's current
/// 1024-minute block; `l1` holds one `Vec` per 1024-minute block of the
/// cursor's current superblock; `overflow` holds everything beyond,
/// keyed by minute. Slot buffers are drained in place and keep their
/// capacity, so steady-state scheduling re-uses the same allocations
/// (slab-style) instead of churning the allocator.
struct Wheel<E> {
    /// The earliest minute that may still hold events (monotone).
    cursor: u64,
    l0: Vec<VecDeque<Entry<E>>>,
    l1: Vec<Vec<Entry<E>>>,
    l0_occ: [u64; OCC_WORDS],
    l1_occ: [u64; OCC_WORDS],
    overflow: BTreeMap<u64, Vec<Entry<E>>>,
    /// Entries physically present across all levels (incl. cancelled).
    stored: usize,
}

impl<E> Wheel<E> {
    fn new() -> Self {
        Wheel {
            cursor: 0,
            l0: (0..SLOTS).map(|_| VecDeque::new()).collect(),
            l1: (0..SLOTS).map(|_| Vec::new()).collect(),
            l0_occ: [0; OCC_WORDS],
            l1_occ: [0; OCC_WORDS],
            overflow: BTreeMap::new(),
            stored: 0,
        }
    }

    /// Inserts an entry. Times before the cursor (the executor never
    /// produces them, but the queue contract tolerates them) are delivered
    /// at the cursor while keeping their original timestamp.
    fn push(&mut self, entry: Entry<E>) {
        let at = entry.time.as_minutes().max(self.cursor);
        self.place(at, entry);
        self.stored += 1;
    }

    /// Places an entry at minute `at` (`at >= self.cursor`).
    fn place(&mut self, at: u64, entry: Entry<E>) {
        if at >> LEVEL_BITS == self.cursor >> LEVEL_BITS {
            let s = (at & (SPAN_L0 - 1)) as usize;
            self.l0[s].push_back(entry);
            self.l0_occ[s >> 6] |= 1 << (s & 63);
        } else if at >> (2 * LEVEL_BITS) == self.cursor >> (2 * LEVEL_BITS) {
            let b = ((at >> LEVEL_BITS) & (SPAN_L0 - 1)) as usize;
            self.l1[b].push(entry);
            self.l1_occ[b >> 6] |= 1 << (b & 63);
        } else {
            self.overflow.entry(at).or_default().push(entry);
        }
    }

    /// Advances the cursor to the earliest occupied minute, cascading
    /// level-1 blocks and overflow superblocks down as the cursor enters
    /// them, and returns its level-0 slot. `None` when empty.
    fn find_front(&mut self) -> Option<usize> {
        if self.stored == 0 {
            return None;
        }
        loop {
            // Level 0: the cursor's own block.
            let block_base = self.cursor & !(SPAN_L0 - 1);
            if let Some(s) = bits_next(&self.l0_occ, (self.cursor - block_base) as usize) {
                self.cursor = block_base + s as u64;
                return Some(s);
            }
            // Level 1: the next occupied block of the current superblock.
            // Slots at or below the cursor's block are empty by
            // construction (dumped when the cursor entered them).
            if let Some(b) = bits_next(&self.l1_occ, 0) {
                let sb_base = self.cursor & !(SPAN_L1 - 1);
                self.cursor = sb_base + ((b as u64) << LEVEL_BITS);
                self.l1_occ[b >> 6] &= !(1u64 << (b & 63));
                let (l0, occ) = (&mut self.l0, &mut self.l0_occ);
                // Unlike level-0 slots (re-used every 1024 minutes, where
                // keeping capacity is slab re-use), a level-1 block drains
                // once per superblock lap — ~2 simulated years. Retaining
                // its buffer would grow the wheel linearly with the horizon
                // (one block per 1024 minutes, forever), so free it.
                for e in std::mem::take(&mut self.l1[b]) {
                    // Level-1 entries always carry their placement minute
                    // (past-time pushes are confined to level 0).
                    let s = (e.time.as_minutes() & (SPAN_L0 - 1)) as usize;
                    occ[s >> 6] |= 1 << (s & 63);
                    l0[s].push_back(e);
                }
                continue;
            }
            // Overflow: jump to the superblock of the earliest far timer
            // and drain that superblock's keys (in time order) into the
            // wheels before any direct insert for it can exist.
            let &first = self.overflow.keys().next()?;
            let sb_base = first & !(SPAN_L1 - 1);
            debug_assert!(
                sb_base > self.cursor,
                "overflow keys are beyond the superblock"
            );
            self.cursor = sb_base;
            let rest = self.overflow.split_off(&(sb_base + SPAN_L1));
            let drained = std::mem::replace(&mut self.overflow, rest);
            for (at, entries) in drained {
                for e in entries {
                    self.place(at, e);
                }
            }
        }
    }

    fn pop_front(&mut self) -> Option<Entry<E>> {
        let s = self.find_front()?;
        let entry = self.l0[s].pop_front().expect("occupied slot has an entry");
        if self.l0[s].is_empty() {
            self.l0_occ[s >> 6] &= !(1u64 << (s & 63));
        }
        self.stored -= 1;
        if self.stored == 0 {
            // An empty wheel has no time state: resetting the cursor makes
            // an emptied queue behave exactly like a fresh one (matching
            // the heap), instead of late-delivering schedules below a
            // cursor that advanced past never-surfaced cancelled entries.
            self.cursor = 0;
        }
        Some(entry)
    }

    /// Returns the `(time, id)` that `pop_front` would deliver next,
    /// **without** advancing the cursor or cascading levels. Keeping the
    /// cursor put matters to callers that schedule between a peek and the
    /// next pop (the sharded coordinator's epoch barrier does): an
    /// advanced cursor would clamp such schedules up to the peeked minute
    /// and deliver them out of order.
    fn peek_front(&self) -> Option<(SimTime, EventId)> {
        if self.stored == 0 {
            return None;
        }
        // Level 0: the earliest occupied slot of the cursor's block is
        // earlier than anything still parked in level 1 or overflow.
        let block_base = self.cursor & !(SPAN_L0 - 1);
        if let Some(s) = bits_next(&self.l0_occ, (self.cursor - block_base) as usize) {
            let entry = self.l0[s].front().expect("occupied slot has an entry");
            return Some((entry.time, entry.id));
        }
        // Level 1: the lowest occupied block holds the earliest minutes,
        // but entries within a block are unsorted — take the (time, id)
        // minimum (ids are schedule-ordered, so this preserves the
        // same-minute FIFO contract).
        if let Some(b) = bits_next(&self.l1_occ, 0) {
            let entry = self.l1[b]
                .iter()
                .min_by_key(|e| (e.time, e.id))
                .expect("occupied block has an entry");
            return Some((entry.time, entry.id));
        }
        // Overflow: the earliest far minute, FIFO within it.
        let (_, entries) = self.overflow.iter().next()?;
        let entry = entries.first().expect("overflow minutes are non-empty");
        Some((entry.time, entry.id))
    }

    /// Drops every entry whose id is in `cancelled`, preserving the order
    /// of survivors. Returns the number of entries removed.
    fn compact(&mut self, cancelled: &IdSet) -> usize {
        let mut removed = 0;
        for s in 0..SLOTS {
            if !self.l0[s].is_empty() {
                self.l0[s].retain(|e| {
                    let keep = !cancelled.contains(&e.id);
                    removed += usize::from(!keep);
                    keep
                });
                if self.l0[s].is_empty() {
                    self.l0_occ[s >> 6] &= !(1u64 << (s & 63));
                }
            }
            if !self.l1[s].is_empty() {
                self.l1[s].retain(|e| {
                    let keep = !cancelled.contains(&e.id);
                    removed += usize::from(!keep);
                    keep
                });
                if self.l1[s].is_empty() {
                    self.l1_occ[s >> 6] &= !(1u64 << (s & 63));
                }
            }
        }
        self.overflow.retain(|_, entries| {
            entries.retain(|e| {
                let keep = !cancelled.contains(&e.id);
                removed += usize::from(!keep);
                keep
            });
            !entries.is_empty()
        });
        self.stored -= removed;
        if self.stored == 0 {
            self.cursor = 0;
        }
        removed
    }
}

// One queue backs an entire simulation, so the wheel variant's inline
// slot arrays dwarfing the boxed heap is harmless — boxing the wheel
// would buy nothing and cost a pointer chase on every schedule/pop.
#[allow(clippy::large_enum_variant)]
enum Backend<E> {
    Wheel(Wheel<E>),
    Heap(BinaryHeap<Entry<E>>),
}

/// Compaction only kicks in past this much garbage, so small queues never
/// pay the sweep.
const COMPACT_FLOOR: usize = 64;

/// A deterministic, cancellable future-event set.
///
/// # Examples
///
/// ```
/// use netbatch_sim_engine::queue::EventQueue;
/// use netbatch_sim_engine::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_minutes(5), "later");
/// q.schedule(SimTime::from_minutes(1), "sooner");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.as_minutes(), e), (1, "sooner"));
/// ```
pub struct EventQueue<E> {
    backend: Backend<E>,
    /// Ids scheduled but not yet delivered or cancelled.
    pending: IdSet,
    /// Ids cancelled but still physically present in the backend.
    cancelled: IdSet,
    next_id: u64,
    scheduled_total: u64,
    cancelled_total: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue on the timer-wheel backend.
    pub fn new() -> Self {
        EventQueue {
            backend: Backend::Wheel(Wheel::new()),
            pending: IdSet::default(),
            cancelled: IdSet::default(),
            next_id: 0,
            scheduled_total: 0,
            cancelled_total: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` pending events —
    /// including the auxiliary pending/cancelled id sets, so a pre-sized
    /// queue performs no set re-hashing in steady state.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            pending: IdSet::with_capacity_and_hasher(capacity, SeqBuild::default()),
            cancelled: IdSet::with_capacity_and_hasher(capacity / 2, SeqBuild::default()),
            ..EventQueue::new()
        }
    }

    /// Creates an empty queue on the original binary-heap backend.
    ///
    /// The heap is retained purely as a *reference implementation*: the
    /// timer wheel is differential-tested against it (unit and property
    /// tests here, plus end-to-end golden-trace runs via
    /// `SimConfig::use_reference_queue`), which is what licenses the claim
    /// that the wheel preserves (time, sequence) delivery order exactly.
    pub fn with_reference_heap() -> Self {
        EventQueue {
            backend: Backend::Heap(BinaryHeap::new()),
            ..EventQueue::new()
        }
    }

    /// Schedules `event` to fire at `time` and returns a handle that can be
    /// passed to [`EventQueue::cancel`].
    ///
    /// Events scheduled for the same instant fire in scheduling order.
    ///
    /// Scheduling earlier than the latest delivered (or peeked) front is
    /// tolerated — the executor never does it, it forbids past scheduling —
    /// but such an event is delivered as soon as possible rather than
    /// re-sorted before already-surfaced entries; it keeps its original
    /// timestamp.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.scheduled_total += 1;
        self.pending.insert(id);
        let entry = Entry { time, id, event };
        match &mut self.backend {
            Backend::Wheel(w) => w.push(entry),
            Backend::Heap(h) => h.push(entry),
        }
        id
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired or been cancelled.
    /// Cancelling an already-delivered handle is a no-op returning `false`.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if !self.pending.remove(&id) {
            return false;
        }
        self.cancelled.insert(id);
        self.cancelled_total += 1;
        self.maybe_compact();
        true
    }

    /// Sweeps lazily-cancelled garbage out of the backend once it exceeds
    /// half the pending set, bounding physical occupancy to
    /// O(pending events). Order-preserving, so delivery is unaffected.
    fn maybe_compact(&mut self) {
        if self.cancelled.len() < COMPACT_FLOOR || self.cancelled.len() <= self.pending.len() / 2 {
            return;
        }
        let removed = match &mut self.backend {
            Backend::Wheel(w) => w.compact(&self.cancelled),
            Backend::Heap(h) => {
                let before = h.len();
                let entries = std::mem::take(h).into_vec();
                *h = entries
                    .into_iter()
                    .filter(|e| !self.cancelled.contains(&e.id))
                    .collect();
                before - h.len()
            }
        };
        debug_assert_eq!(
            removed,
            self.cancelled.len(),
            "every cancelled id is stored"
        );
        self.cancelled.clear();
    }

    /// Removes and returns the earliest pending event, skipping cancelled
    /// entries. Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let entry = match &mut self.backend {
                Backend::Wheel(w) => w.pop_front(),
                Backend::Heap(h) => h.pop(),
            }?;
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            self.pending.remove(&entry.id);
            return Some((entry.time, entry.event));
        }
    }

    /// Like [`EventQueue::pop`] but also returns the delivered entry's
    /// [`EventId`] — the handle [`EventQueue::schedule`] returned for it.
    ///
    /// External drivers (the sharded simulation coordinator) use the id to
    /// validate that a popped event is still the one a consumer expects:
    /// with deferred cancellation, an event can be popped before the cancel
    /// that would have removed it is applied, and the id is the only way to
    /// tell a live completion from a superseded one.
    pub fn pop_with_id(&mut self) -> Option<(SimTime, EventId, E)> {
        loop {
            let entry = match &mut self.backend {
                Backend::Wheel(w) => w.pop_front(),
                Backend::Heap(h) => h.pop(),
            }?;
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            self.pending.remove(&entry.id);
            return Some((entry.time, entry.id, entry.event));
        }
    }

    /// Returns the time of the earliest pending (non-cancelled) event
    /// without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let (time, id) = match &mut self.backend {
                Backend::Wheel(w) => w.peek_front(),
                Backend::Heap(h) => h.peek().map(|e| (e.time, e.id)),
            }?;
            if self.cancelled.remove(&id) {
                match &mut self.backend {
                    Backend::Wheel(w) => w.pop_front(),
                    Backend::Heap(h) => h.pop(),
                };
            } else {
                return Some(time);
            }
        }
    }

    /// Returns the number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total number of events ever cancelled on this queue.
    pub fn cancelled_total(&self) -> u64 {
        self.cancelled_total
    }

    /// Entries physically present in the backend, including
    /// not-yet-swept cancelled garbage. Exposed for the
    /// memory-proportionality tests and the bench harness.
    #[doc(hidden)]
    pub fn stored_entries(&self) -> usize {
        match &self.backend {
            Backend::Wheel(w) => w.stored,
            Backend::Heap(h) => h.len(),
        }
    }

    /// True when this queue runs on the reference heap backend.
    #[doc(hidden)]
    pub fn uses_reference_heap(&self) -> bool {
        matches!(self.backend, Backend::Heap(_))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.len())
            .field("scheduled_total", &self.scheduled_total)
            .field("cancelled_total", &self.cancelled_total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_minutes(30), 'c');
        q.schedule(SimTime::from_minutes(10), 'a');
        q.schedule(SimTime::from_minutes(20), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn year_horizon_bookings_pop_in_order() {
        // The streaming backend books completions across a year-long
        // window (525 600 minutes), far beyond the wheel's low levels;
        // timer promotion must keep delivering in (time, id) order and
        // agree with the reference heap at that range.
        let year = 365 * 24 * 60;
        let mut wheel = EventQueue::new();
        let mut heap = EventQueue::with_reference_heap();
        let minutes: Vec<u64> = (0..200u64)
            .map(|i| (i * 7919 + i * i * 104_729) % year)
            .collect();
        for (i, &m) in minutes.iter().enumerate() {
            wheel.schedule(SimTime::from_minutes(m), i);
            heap.schedule(SimTime::from_minutes(m), i);
        }
        wheel.schedule(SimTime::from_minutes(year + 1), usize::MAX);
        heap.schedule(SimTime::from_minutes(year + 1), usize::MAX);
        let mut last = SimTime::ZERO;
        loop {
            let a = wheel.pop();
            let b = heap.pop();
            assert_eq!(a, b);
            let Some((t, _)) = a else { break };
            assert!(t >= last, "wheel must not reorder far timers");
            last = t;
        }
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_minutes(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_minutes(1), "x");
        q.schedule(SimTime::from_minutes(2), "y");
        assert!(q.cancel(id));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("y"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn double_cancel_is_noop() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_minutes(1), ());
        assert!(q.cancel(id));
        assert!(!q.cancel(id));
        assert_eq!(q.cancelled_total(), 1);
    }

    #[test]
    fn cancel_unknown_id_is_rejected() {
        let mut q = EventQueue::<()>::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn cancel_after_delivery_is_noop() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_minutes(1), "x");
        assert!(q.pop().is_some());
        assert!(!q.cancel(id));
        assert_eq!(q.len(), 0);
        assert_eq!(q.cancelled_total(), 0);
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let first = q.schedule(SimTime::from_minutes(1), "x");
        q.schedule(SimTime::from_minutes(9), "y");
        q.cancel(first);
        assert_eq!(q.peek_time(), Some(SimTime::from_minutes(9)));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q = EventQueue::<u8>::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn debug_is_nonempty() {
        let q = EventQueue::<u8>::new();
        assert!(!format!("{q:?}").is_empty());
    }

    #[test]
    fn spans_every_wheel_level() {
        // One event per level: level 0 (same block), level 1 (same
        // superblock), overflow (beyond the level-1 span), in shuffled
        // insertion order.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_minutes(3_000_000), "overflow");
        q.schedule(SimTime::from_minutes(5), "l0");
        q.schedule(SimTime::from_minutes(200_000), "l1");
        q.schedule(SimTime::from_minutes(3_000_000), "overflow-tie");
        let order: Vec<(u64, &str)> =
            std::iter::from_fn(|| q.pop().map(|(t, e)| (t.as_minutes(), e))).collect();
        assert_eq!(
            order,
            vec![
                (5, "l0"),
                (200_000, "l1"),
                (3_000_000, "overflow"),
                (3_000_000, "overflow-tie"),
            ]
        );
    }

    #[test]
    fn fifo_survives_level1_cascade() {
        // Entry A for minute 1500 is scheduled while the cursor is in
        // block 0 (so it lands in level 1); the cursor then enters block 1
        // (dumping A into level 0); entry B for the same minute is then
        // scheduled directly into level 0. A must still pop before B.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_minutes(1500), "A");
        q.schedule(SimTime::from_minutes(1100), "advance");
        assert_eq!(q.pop().map(|(_, e)| e), Some("advance"));
        q.schedule(SimTime::from_minutes(1500), "B");
        assert_eq!(q.pop().map(|(_, e)| e), Some("A"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("B"));
    }

    #[test]
    fn fifo_survives_overflow_drain() {
        let far = 5 * SPAN_L1 + 77;
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_minutes(far), "A");
        q.schedule(SimTime::from_minutes(far - 3), "earlier");
        assert_eq!(q.pop().map(|(_, e)| e), Some("earlier"));
        // The overflow superblock has been drained; a direct insert for
        // the same far minute must queue behind A.
        q.schedule(SimTime::from_minutes(far), "B");
        assert_eq!(q.pop().map(|(_, e)| e), Some("A"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("B"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancellation_garbage_is_bounded() {
        // 100k schedule/cancel churn: physical occupancy must stay
        // proportional to len() — compaction caps garbage at half the
        // pending set (plus the small compaction floor).
        let mut q = EventQueue::with_capacity(100_000);
        let mut ids = Vec::with_capacity(100_000);
        for i in 0..100_000u64 {
            ids.push(q.schedule(SimTime::from_minutes(i % 5_000), i));
        }
        for (i, id) in ids.iter().enumerate() {
            if i % 10 != 0 {
                q.cancel(*id);
            }
            let bound = 2 * q.len() + 2 * COMPACT_FLOOR;
            assert!(
                q.stored_entries() <= bound,
                "stored {} exceeds memory-proportional bound {} at step {i} (len {})",
                q.stored_entries(),
                bound,
                q.len()
            );
        }
        assert_eq!(q.len(), 10_000);
        assert!(q.stored_entries() <= 2 * q.len() + 2 * COMPACT_FLOOR);
        assert_eq!(q.cancelled_total(), 90_000);
        // Every survivor still pops, in order.
        let mut popped = 0;
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            popped += 1;
        }
        assert_eq!(popped, 10_000);
    }

    #[test]
    fn reference_heap_backend_matches_contract() {
        let mut q = EventQueue::with_reference_heap();
        assert!(q.uses_reference_heap());
        let a = q.schedule(SimTime::from_minutes(7), "a");
        q.schedule(SimTime::from_minutes(7), "b");
        q.schedule(SimTime::from_minutes(2), "c");
        assert!(q.cancel(a));
        assert_eq!(q.peek_time(), Some(SimTime::from_minutes(2)));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["c", "b"]);
    }

    proptest! {
        /// Popping yields a non-decreasing sequence of times, regardless of
        /// insertion order.
        #[test]
        fn prop_pop_order_is_monotone(times in proptest::collection::vec(0u64..10_000, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_minutes(t), i);
            }
            let mut last = SimTime::ZERO;
            let mut count = 0usize;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
                count += 1;
            }
            prop_assert_eq!(count, times.len());
        }

        /// Same-time events preserve scheduling order even mixed with other
        /// times (stability).
        #[test]
        fn prop_same_time_fifo(times in proptest::collection::vec(0u64..50, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_minutes(t), i);
            }
            let mut last_seq_at_time: std::collections::HashMap<u64, usize> = Default::default();
            while let Some((t, seq)) = q.pop() {
                if let Some(&prev) = last_seq_at_time.get(&t.as_minutes()) {
                    prop_assert!(seq > prev);
                }
                last_seq_at_time.insert(t.as_minutes(), seq);
            }
        }

        /// len() always equals scheduled - popped - cancelled.
        #[test]
        fn prop_len_accounting(ops in proptest::collection::vec(0u8..3, 1..300)) {
            let mut q = EventQueue::new();
            let mut ids = Vec::new();
            let mut live: i64 = 0;
            for (i, op) in ops.iter().enumerate() {
                match op {
                    0 => {
                        ids.push(q.schedule(SimTime::from_minutes(i as u64 % 17), i));
                        live += 1;
                    }
                    1 => {
                        if let Some(id) = ids.pop() {
                            if q.cancel(id) {
                                live -= 1;
                            }
                        }
                    }
                    _ => {
                        if q.pop().is_some() {
                            live -= 1;
                            // popped id may still be in `ids`; cancelling it later is a no-op
                        }
                    }
                }
                prop_assert_eq!(q.len() as i64, live.max(0));
            }
        }

        /// Differential test: over arbitrary monotone-safe schedule /
        /// cancel / pop / peek sequences (times never before the latest
        /// surfaced front, matching the executor's contract — every peek is
        /// immediately followed by popping that event, and handlers only
        /// schedule at or after the delivered time), the timer wheel and
        /// the reference heap agree on every observable: pop results, peek
        /// times, lengths, and cancel outcomes. Offsets are scaled so the
        /// sequences regularly cross level-1 blocks and the overflow span.
        #[test]
        fn prop_wheel_matches_reference_heap(
            ops in proptest::collection::vec((0u8..4, 0u64..2_000), 1..400),
        ) {
            let mut wheel = EventQueue::new();
            let mut heap = EventQueue::with_reference_heap();
            let mut ids = Vec::new();
            let mut cursor = 0u64;
            for (i, &(op, x)) in ops.iter().enumerate() {
                match op {
                    0 => {
                        let t = SimTime::from_minutes(cursor + x);
                        let idw = wheel.schedule(t, i);
                        let idh = heap.schedule(t, i);
                        prop_assert_eq!(idw, idh);
                        ids.push(idw);
                    }
                    1 => {
                        // Far timers: exercise level 1 and overflow.
                        let t = SimTime::from_minutes(cursor + x * 700);
                        let idw = wheel.schedule(t, i);
                        let idh = heap.schedule(t, i);
                        prop_assert_eq!(idw, idh);
                        ids.push(idw);
                    }
                    2 => {
                        if !ids.is_empty() {
                            let id = ids[(x as usize) % ids.len()];
                            prop_assert_eq!(wheel.cancel(id), heap.cancel(id));
                        }
                    }
                    _ => {
                        let a = wheel.pop();
                        let b = heap.pop();
                        prop_assert_eq!(&a, &b);
                        if let Some((t, _)) = a {
                            cursor = cursor.max(t.as_minutes());
                        }
                    }
                }
                prop_assert_eq!(wheel.len(), heap.len());
                let front = wheel.peek_time();
                prop_assert_eq!(front, heap.peek_time());
                if let Some(t) = front {
                    // Peeking surfaces the front: later schedules must not
                    // go before it (the executor's usage pattern).
                    cursor = cursor.max(t.as_minutes());
                }
            }
            loop {
                let a = wheel.pop();
                let b = heap.pop();
                prop_assert_eq!(&a, &b);
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
