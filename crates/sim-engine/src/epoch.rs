//! Deterministic merging of per-lane progress at epoch barriers.
//!
//! The sharded simulation backend advances independent lanes (one per
//! shard) inside a minute-epoch and synchronizes at epoch barriers, where
//! every cross-lane action — queue effects, observer emissions — must be
//! applied in an order that does **not** depend on which lane finished
//! first. This module provides that order: a total [`MergeKey`] of
//! `(epoch, lane, seq)` plus a k-way merge of per-lane runs that are
//! already sorted by `seq` (each lane executes its items in ascending
//! global sequence order, so its output run is sorted by construction).
//!
//! The canonical ordering is what makes the sharded backend replay
//! byte-identically against the serial reference: `seq` is the global
//! pop order the coordinator assigned before fanning items out, so the
//! merged stream reproduces the exact serial interleaving regardless of
//! shard scheduling, completion order, or thread count.

/// A totally ordered position for one merged item: epoch first (barriers
/// never reorder across epochs), then lane (pool/shard id breaks ties
/// between lanes at the same epoch when no finer sequence exists), then
/// the per-epoch sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MergeKey {
    /// The epoch (minute) the item belongs to.
    pub epoch: u64,
    /// The lane (shard / pool group) that produced the item.
    pub lane: u32,
    /// Position within the epoch — for the simulator, the global pop
    /// sequence the coordinator stamped before dispatching to lanes.
    pub seq: u64,
}

impl MergeKey {
    /// Builds a key.
    pub fn new(epoch: u64, lane: u32, seq: u64) -> Self {
        MergeKey { epoch, lane, seq }
    }
}

/// Merges per-lane runs into one stream ordered by `key`, preserving each
/// run's internal order for equal keys (stable within a lane).
///
/// Each input run must already be sorted by the key function — which the
/// sharded coordinator guarantees by construction, since every lane
/// executes its items in ascending `seq` order. Ties across lanes (two
/// lanes producing the same key) resolve in favour of the lower lane
/// index, so the output is a pure function of the runs' *contents*, never
/// of the order the lanes happened to finish in.
///
/// # Panics
///
/// Panics (debug builds) if a run is not sorted by its keys — an unsorted
/// run means a lane executed out of sequence, which would already have
/// broken determinism upstream.
pub fn merge_sorted_runs<T, K, F>(runs: Vec<Vec<T>>, key: F) -> Vec<T>
where
    K: Ord,
    F: Fn(&T) -> K,
{
    debug_assert!(runs
        .iter()
        .all(|run| run.windows(2).all(|w| key(&w[0]) <= key(&w[1]))));
    let total = runs.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    // Peekable cursor per run; k is tiny (the shard count), so a linear
    // scan over the run heads beats a binary heap and keeps the tie-break
    // (lowest lane index first) explicit.
    let mut heads: Vec<_> = runs
        .into_iter()
        .map(|run| run.into_iter().peekable())
        .collect();
    loop {
        let mut best: Option<(usize, K)> = None;
        for (lane, cursor) in heads.iter_mut().enumerate() {
            let Some(head) = cursor.peek() else {
                continue;
            };
            let k = key(head);
            // `<=` keeps the earlier lane on equal keys: lanes are visited
            // in ascending index order, so ties resolve to the lowest lane.
            best = match best {
                Some((b, bk)) if bk <= k => Some((b, bk)),
                _ => Some((lane, k)),
            };
        }
        let Some((lane, _)) = best else {
            break;
        };
        out.push(heads[lane].next().expect("peeked head present"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cross-pool action as the coordinator sees it at a barrier: what
    /// happened, where, and its canonical position. The tests model the
    /// adversarial same-epoch scenarios from the sharded backend's merge
    /// step: the *contents* of the lanes are fixed, the order the lanes
    /// finish in is permuted, and the merged stream must never change.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Action {
        key: MergeKey,
        what: &'static str,
    }

    fn act(epoch: u64, lane: u32, seq: u64, what: &'static str) -> Action {
        Action {
            key: MergeKey::new(epoch, lane, seq),
            what,
        }
    }

    /// Merges the given per-lane runs under every permutation of "which
    /// lane finished first" (the coordinator collects results in lane
    /// order regardless, but a buggy merge keyed on arrival would differ)
    /// and asserts the output is identical each time.
    fn assert_order_independent(lanes: Vec<Vec<Action>>) -> Vec<Action> {
        let reference = merge_sorted_runs(lanes.clone(), |a| a.key);
        // Simulate out-of-order completion: rotate which lane's results
        // land first. The merge receives lanes indexed by lane id (as the
        // coordinator stores them), so any arrival order must reduce to
        // the same input — we model "arrival" by building the runs vector
        // from each rotation and scattering entries back to lane slots.
        let n = lanes.len();
        for first in 0..n {
            let mut slots: Vec<Vec<Action>> = vec![Vec::new(); n];
            for off in 0..n {
                let lane = (first + off) % n;
                slots[lane] = lanes[lane].clone();
            }
            let merged = merge_sorted_runs(slots, |a| a.key);
            assert_eq!(
                merged, reference,
                "merge output depends on lane completion order (lane {first} first)"
            );
        }
        reference
    }

    #[test]
    fn merge_key_orders_epoch_then_lane_then_seq() {
        let a = MergeKey::new(1, 5, 9);
        let b = MergeKey::new(2, 0, 0);
        assert!(a < b, "earlier epoch wins regardless of lane/seq");
        let c = MergeKey::new(1, 6, 0);
        assert!(a < c, "same epoch: lower lane wins regardless of seq");
        let d = MergeKey::new(1, 5, 10);
        assert!(a < d, "same epoch+lane: lower seq wins");
    }

    #[test]
    fn two_pools_releasing_capacity_for_one_queued_job() {
        // Epoch 100: pools 3 and 7 both complete a job, freeing capacity
        // that could start the same queued job j9. The canonical order is
        // pool-major within the epoch, so pool 3's release *and* the
        // dependent start replay before pool 7's release — j9 lands on
        // pool 3 no matter which shard reports its slice first.
        let lanes = vec![
            vec![
                act(100, 3, 40, "complete@p3"),
                act(100, 3, 42, "start queued j9 on p3"),
            ],
            vec![act(100, 7, 41, "complete@p7")],
        ];
        let merged = assert_order_independent(lanes);
        let order: Vec<_> = merged.iter().map(|a| a.what).collect();
        assert_eq!(
            order,
            ["complete@p3", "start queued j9 on p3", "complete@p7"],
            "the pool that owns the earlier lane must win the queued job \
             and its whole epoch slice replays as one contiguous block"
        );
    }

    #[test]
    fn blacklist_expiry_ties_with_ressus_targeting_same_pool() {
        // Epoch 200: pool 2's blacklist expires (a lane-2 action at seq 7)
        // the same minute a ResSus* decision on lane 0 targets pool 2
        // (seq 5). The serial simulator evaluated the targeting *before*
        // the expiry, so the merged order must keep the targeting first —
        // it saw the pool still blacklisted — regardless of which shard
        // finishes its epoch slice first.
        let lanes = vec![
            vec![act(200, 0, 5, "ressus targets p2 (still blacklisted)")],
            vec![act(200, 2, 7, "blacklist expires on p2")],
        ];
        let merged = assert_order_independent(lanes);
        assert_eq!(merged[0].what, "ressus targets p2 (still blacklisted)");
        assert_eq!(merged[1].what, "blacklist expires on p2");
    }

    #[test]
    fn retry_backoff_landing_exactly_on_the_barrier() {
        // A retry scheduled to fire at the epoch boundary belongs to the
        // *next* epoch (the barrier flushes strictly-earlier work first),
        // so it must sort after every action of the closing epoch even
        // though its seq number is smaller than theirs.
        let lanes = vec![
            vec![
                act(300, 1, 90, "evict j4"),
                act(301, 1, 12, "retry j4 fires"),
            ],
            vec![act(300, 4, 91, "sample tick")],
        ];
        let merged = assert_order_independent(lanes);
        let order: Vec<_> = merged.iter().map(|a| a.what).collect();
        assert_eq!(
            order,
            ["evict j4", "sample tick", "retry j4 fires"],
            "epoch dominates seq: the barrier-straddling retry replays last"
        );
    }

    #[test]
    fn ties_across_lanes_resolve_to_lowest_lane() {
        // Two lanes producing the *same* key (possible for barrier-level
        // bookkeeping records that carry no per-event seq) must still
        // merge deterministically: lowest lane index first.
        let lanes = vec![
            vec![act(5, 9, 0, "late lane, equal key... not equal lane")],
            vec![act(5, 9, 0, "duplicate key on a later slot")],
        ];
        let merged = assert_order_independent(lanes);
        assert_eq!(merged[0].what, "late lane, equal key... not equal lane");
    }

    #[test]
    fn empty_and_uneven_runs_merge_cleanly() {
        let lanes = vec![
            Vec::new(),
            vec![act(1, 1, 0, "a"), act(1, 1, 3, "b"), act(2, 1, 0, "c")],
            Vec::new(),
            vec![act(1, 3, 1, "d")],
        ];
        let merged = assert_order_independent(lanes);
        let order: Vec<_> = merged.iter().map(|a| a.what).collect();
        assert_eq!(order, ["a", "b", "d", "c"]);
        assert!(merge_sorted_runs(Vec::<Vec<Action>>::new(), |a| a.key).is_empty());
    }
}
