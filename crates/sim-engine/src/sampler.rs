//! Periodic sampling support.
//!
//! ASCA "samples at each minute the current states of all NetBatch
//! components". [`PeriodicSampler`] generates that cadence of sampling
//! instants; the model schedules a sampling event at each one and records
//! whatever state it wants into the metrics crate.

use crate::time::{SimDuration, SimTime};

/// Generates an arithmetic sequence of sampling instants.
///
/// # Examples
///
/// ```
/// use netbatch_sim_engine::sampler::PeriodicSampler;
/// use netbatch_sim_engine::time::{SimDuration, SimTime};
///
/// let mut s = PeriodicSampler::new(SimTime::ZERO, SimDuration::from_minutes(10));
/// assert_eq!(s.next_tick().as_minutes(), 0);
/// assert_eq!(s.next_tick().as_minutes(), 10);
/// assert_eq!(s.next_tick().as_minutes(), 20);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeriodicSampler {
    next: SimTime,
    interval: SimDuration,
}

impl PeriodicSampler {
    /// Creates a sampler whose first tick is at `start` and which then ticks
    /// every `interval`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(start: SimTime, interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "sampling interval must be positive");
        PeriodicSampler {
            next: start,
            interval,
        }
    }

    /// A sampler ticking every minute from time zero — ASCA's cadence.
    pub fn every_minute() -> Self {
        PeriodicSampler::new(SimTime::ZERO, SimDuration::MINUTE)
    }

    /// The sampling interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Returns the upcoming tick without consuming it.
    pub fn peek_tick(&self) -> SimTime {
        self.next
    }

    /// Consumes and returns the next sampling instant.
    pub fn next_tick(&mut self) -> SimTime {
        let t = self.next;
        self.next = self.next.saturating_add(self.interval);
        t
    }

    /// Advances the sampler so its next tick is strictly after `now`.
    /// Returns how many ticks were skipped.
    pub fn catch_up(&mut self, now: SimTime) -> u64 {
        let mut skipped = 0;
        while self.next <= now {
            self.next = self.next.saturating_add(self.interval);
            skipped += 1;
        }
        skipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_advance_by_interval() {
        let mut s = PeriodicSampler::new(SimTime::from_minutes(5), SimDuration::from_minutes(3));
        assert_eq!(s.next_tick().as_minutes(), 5);
        assert_eq!(s.next_tick().as_minutes(), 8);
        assert_eq!(s.next_tick().as_minutes(), 11);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut s = PeriodicSampler::every_minute();
        assert_eq!(s.peek_tick(), SimTime::ZERO);
        assert_eq!(s.peek_tick(), SimTime::ZERO);
        s.next_tick();
        assert_eq!(s.peek_tick(), SimTime::from_minutes(1));
    }

    #[test]
    fn catch_up_skips_past_ticks() {
        let mut s = PeriodicSampler::every_minute();
        let skipped = s.catch_up(SimTime::from_minutes(10));
        assert_eq!(skipped, 11); // ticks 0..=10 inclusive
        assert_eq!(s.peek_tick(), SimTime::from_minutes(11));
    }

    #[test]
    fn catch_up_noop_when_already_ahead() {
        let mut s = PeriodicSampler::new(SimTime::from_minutes(100), SimDuration::MINUTE);
        assert_eq!(s.catch_up(SimTime::from_minutes(50)), 0);
        assert_eq!(s.peek_tick(), SimTime::from_minutes(100));
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_rejected() {
        PeriodicSampler::new(SimTime::ZERO, SimDuration::ZERO);
    }
}
