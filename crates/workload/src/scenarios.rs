//! Scenario presets: the site topology and calibrated workloads behind each
//! experiment in the paper's evaluation (§3.1).
//!
//! The real inputs are proprietary (a year of NetBatch traces; 20 pools of
//! "hundreds to tens of thousands" of heterogeneous machines), so these
//! presets synthesize the closest equivalents and are calibrated against
//! every aggregate the paper publishes:
//!
//! * ~40% average utilization, typically 20–60% (§2.3, Figure 4);
//! * a one-week busy window containing ≈248 000 jobs (§3.1);
//! * a NoRes suspend rate near 1.14% under round-robin (Table 1);
//! * bursty high-priority arrivals confined to small pool subsets (§2.3);
//! * heavy-tailed runtimes (>100k-minute jobs exist, Figure 2).
//!
//! Every dimension scales with a single `scale` factor that shrinks both
//! capacity and arrival rates, preserving utilization and preemption
//! behaviour while letting tests run in milliseconds.

use netbatch_cluster::ids::{MachineId, PoolId};
use netbatch_cluster::machine::MachineConfig;
use netbatch_cluster::pool::PoolConfig;

use crate::distributions::{LogNormal, Mixture, Pareto, WeightedChoice};
use crate::generator::arrivals::ArrivalProcess;
use crate::generator::{
    AffinityPicker, BurstArrivals, JobClass, PoissonArrivals, Stream, WorkloadSpec,
};
use crate::trace::Trace;

/// The number of physical pools at the paper's site.
pub const POOL_COUNT: u16 = 20;

/// Minutes in the paper's one-week busy evaluation window.
pub const WEEK_MINUTES: u64 = 7 * 24 * 60;

/// Minutes in the paper's year-long trace (Figure 4's x axis runs to
/// roughly 500 000 minutes).
pub const YEAR_MINUTES: u64 = 500_000;

/// A site: the pool topology the simulator instantiates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteSpec {
    /// Pool configurations, indexed by pool id.
    pub pools: Vec<PoolConfig>,
}

impl SiteSpec {
    /// The scaled stand-in for the paper's 20-pool site.
    ///
    /// Pool sizes are heterogeneous (a few big, many medium, some small,
    /// mirroring "hundreds to tens of thousands of machines"), and each
    /// pool mixes three machine shapes with varying CPU speed and memory.
    /// `scale` multiplies machine counts (minimum one per pool).
    ///
    /// # Panics
    ///
    /// Panics unless `scale > 0`.
    pub fn paper_site(scale: f64) -> Self {
        assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
        let pools = (0..POOL_COUNT)
            .map(|p| {
                // Pools 0-3 large, 4-13 medium, 14-19 small.
                let base: u32 = match p {
                    0..=3 => 680,
                    4..=13 => 410,
                    _ => 160,
                };
                let n = ((f64::from(base) * scale).round() as u32).max(1);
                Self::mixed_pool(PoolId(p), n)
            })
            .collect();
        SiteSpec { pools }
    }

    /// Builds one pool of `n` machines in the site's standard 70/20/10 mix
    /// of machine shapes.
    fn mixed_pool(id: PoolId, n: u32) -> PoolConfig {
        let machines = (0..n)
            .map(|i| {
                // Deterministic interleaving of the three shapes.
                match i % 10 {
                    0 | 1 => MachineConfig::new(MachineId(i), 8, 32_768).with_speed_milli(1100),
                    2 => MachineConfig::new(MachineId(i), 2, 8_192).with_speed_milli(800),
                    _ => MachineConfig::new(MachineId(i), 4, 16_384),
                }
            })
            .collect();
        PoolConfig { id, machines }
    }

    /// Total cores at the site.
    pub fn total_cores(&self) -> u32 {
        self.pools.iter().map(PoolConfig::total_cores).sum()
    }

    /// The paper's high-load transform: every machine's cores halved.
    pub fn halved(&self) -> SiteSpec {
        SiteSpec {
            pools: self.pools.iter().map(PoolConfig::halved_cores).collect(),
        }
    }
}

/// All workload knobs, with paper-calibrated defaults. Constructing
/// scenario variants = tweaking fields before [`ScenarioParams::build_workload`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioParams {
    /// Capacity/arrival scale factor (1.0 = paper size, 248k jobs/week).
    pub scale: f64,
    /// Trace window length in minutes.
    pub horizon: u64,
    /// Low-priority background arrival rate at scale 1.0 (jobs/min).
    pub low_rate: f64,
    /// Number of background priority classes. 1 reproduces the paper's
    /// two-class (owner vs borrowed) world; more levels split the
    /// background rate across ownership classes at priorities 0, 2, 4, …
    /// which preempt each other at saturated pools.
    pub low_priority_levels: u8,
    /// Median of the low-priority runtime body (minutes).
    pub low_runtime_median: f64,
    /// Sigma of the low-priority runtime body.
    pub low_runtime_sigma: f64,
    /// Weight of the Pareto runtime tail.
    pub tail_weight: f64,
    /// Number of independent high-priority burst streams (owner groups).
    pub high_streams: usize,
    /// Per-stream quiet arrival rate at scale 1.0 (jobs/min).
    pub high_quiet_rate: f64,
    /// Per-stream burst arrival rate at scale 1.0 (jobs/min).
    pub high_burst_rate: f64,
    /// Mean quiet-phase length (minutes).
    pub high_quiet_len: f64,
    /// Mean burst-phase length (minutes).
    pub high_burst_len: f64,
    /// Median high-priority runtime (minutes).
    pub high_runtime_median: f64,
    /// Pools each high-priority owner group is pinned to.
    pub high_affinity_pools: u16,
    /// Explicit pool subsets per owner group (cycled if fewer than
    /// `high_streams`). `None` derives consecutive subsets of
    /// `high_affinity_pools` pools spread evenly across the site. The
    /// paper's latency-sensitive bursts are "configured to only run in
    /// specific sets of physical pools"; presets pin one large + one
    /// medium pool per group so bursts saturate without drowning.
    pub high_affinity_sets: Option<Vec<Vec<u16>>>,
    /// RNG seed for trace generation.
    pub seed: u64,
}

impl ScenarioParams {
    /// The paper's normal-load week at the given scale.
    pub fn normal_week(scale: f64) -> Self {
        ScenarioParams {
            scale,
            horizon: WEEK_MINUTES,
            low_rate: 17.0,
            low_priority_levels: 1,
            low_runtime_median: 200.0,
            low_runtime_sigma: 1.1,
            tail_weight: 0.02,
            high_streams: 4,
            high_quiet_rate: 0.05,
            high_burst_rate: 8.0,
            high_quiet_len: 5000.0,
            high_burst_len: 700.0,
            high_runtime_median: 300.0,
            high_affinity_pools: 2,
            // Pool 3 (large) and the small pools are never burst targets:
            // they are the capacity rescheduling can escape to.
            high_affinity_sets: Some(vec![vec![0, 4], vec![1, 6], vec![2, 8], vec![0, 10]]),
            seed: 20_101_108, // the conference date
        }
    }

    /// The §3.2.1 high-suspension variant: the same site, but high-priority
    /// owner groups submit much heavier bursts, driving the suspend rate
    /// from ~1% to the ~14% regime the paper probes.
    pub fn high_suspension_week(scale: f64) -> Self {
        ScenarioParams {
            low_rate: 30.0,
            low_priority_levels: 4,
            high_streams: 4,
            high_burst_rate: 8.0,
            high_burst_len: 1000.0,
            high_quiet_len: 2000.0,
            high_runtime_median: 200.0,
            high_affinity_pools: 5,
            high_affinity_sets: None,
            ..ScenarioParams::normal_week(scale)
        }
    }

    /// A year-long trace for the Figure 2/4 analyses. Runs at a reduced
    /// default scale so half a million simulated minutes stay tractable.
    pub fn year(scale: f64) -> Self {
        ScenarioParams {
            horizon: YEAR_MINUTES,
            ..ScenarioParams::normal_week(scale)
        }
    }

    /// Expected number of generated jobs.
    pub fn expected_jobs(&self) -> f64 {
        let high_rate = {
            let b = self.high_burst();
            b.rate() * self.high_streams as f64
        };
        (self.low_rate * self.scale + high_rate) * self.horizon as f64
    }

    fn high_burst(&self) -> BurstArrivals {
        BurstArrivals::new(
            (self.high_quiet_rate * self.scale).max(1e-9),
            (self.high_burst_rate * self.scale).max(2e-9),
            self.high_quiet_len,
            self.high_burst_len,
        )
    }

    /// Builds the workload spec (streams + window).
    pub fn build_workload(&self) -> WorkloadSpec {
        let mut spec = WorkloadSpec::new(0, self.horizon);
        // Low-priority background: any pool, heavy-tailed runtimes.
        let low_runtime = Mixture::new(
            LogNormal::with_median(self.low_runtime_median, self.low_runtime_sigma),
            Pareto::new(2_000.0, 1.5),
            self.tail_weight,
        );
        let levels = self.low_priority_levels.max(1);
        for level in 0..levels {
            let low = JobClass::new(
                format!("background-p{}", level * 2),
                level * 2,
                Box::new(low_runtime.clone()),
            )
            .with_cores(WeightedChoice::new(&[
                (1.0, 0.75),
                (2.0, 0.20),
                (4.0, 0.05),
            ]))
            .with_memory(WeightedChoice::new(&[
                (512.0, 0.3),
                (2048.0, 0.5),
                (6144.0, 0.2),
            ]));
            spec = spec.stream(Stream::new(
                low,
                Box::new(PoissonArrivals::new(
                    self.low_rate * self.scale / f64::from(levels),
                )),
            ));
        }
        // High-priority owner groups: each pinned to a small pool subset,
        // staggered so their bursts are independent.
        for g in 0..self.high_streams {
            let pools: Vec<u16> = match &self.high_affinity_sets {
                Some(sets) if !sets.is_empty() => sets[g % sets.len()].clone(),
                _ => {
                    let stride = (POOL_COUNT / (self.high_streams as u16).max(1)).max(1);
                    let first_pool = ((g as u16) * stride) % POOL_COUNT;
                    (0..self.high_affinity_pools)
                        .map(|k| (first_pool + k) % POOL_COUNT)
                        .collect()
                }
            };
            let runtime = LogNormal::with_median(self.high_runtime_median, 1.0);
            let class = JobClass::new(format!("owner-group-{g}"), 10, Box::new(runtime))
                .with_cores(WeightedChoice::new(&[(1.0, 0.8), (2.0, 0.2)]))
                .with_memory(WeightedChoice::new(&[(1024.0, 0.6), (4096.0, 0.4)]))
                .with_affinity(AffinityPicker::Fixed(pools));
            spec = spec.stream(Stream::new(class, Box::new(self.high_burst())));
        }
        spec
    }

    /// Generates the trace for these parameters.
    pub fn generate_trace(&self) -> Trace {
        self.build_workload().generate(self.seed)
    }

    /// Builds the matching site at the same scale.
    pub fn build_site(&self) -> SiteSpec {
        SiteSpec::paper_site(self.scale)
    }
}

/// A pool-decomposable scenario: N uniform pools, each fed only by streams
/// pinned to it. This is the shape the sharded and streaming kernels
/// parallelize perfectly — no cross-pool affinity, so every pool's dynamics
/// are independent — and the shape `perf_sharded` and the year-scale CLI
/// runs sweep. Streams are emitted in ascending pool order, satisfying
/// [`WorkloadSpec::validate_pool_major`].
#[derive(Debug, Clone, PartialEq)]
pub struct PerPoolParams {
    /// Number of pools (and of low-priority streams).
    pub pools: u16,
    /// Machines per pool before scaling.
    pub machines_per_pool: u32,
    /// Cores per machine.
    pub cores_per_machine: u32,
    /// Memory per machine (MB).
    pub memory_mb: u64,
    /// Low-priority Poisson arrival rate per pool at scale 1.0 (jobs/min).
    pub rate_per_pool: f64,
    /// Capacity/arrival scale factor.
    pub scale: f64,
    /// Window length in minutes.
    pub horizon: u64,
    /// Median of the runtime body (minutes).
    pub runtime_median: f64,
    /// Sigma of the runtime body.
    pub runtime_sigma: f64,
    /// Weight of the Pareto runtime tail.
    pub tail_weight: f64,
    /// When true, each pool also gets a bursty high-priority stream
    /// (quiet/burst rates scaled from the per-pool rate), so suspension
    /// paths get exercised without breaking pool independence.
    pub high_bursts: bool,
    /// RNG seed.
    pub seed: u64,
}

impl PerPoolParams {
    /// The `perf_sharded` calibration: 96 machines × 4 cores per pool,
    /// 0.5 jobs/min/pool, normal-week runtime shape.
    pub fn new(pools: u16, scale: f64, horizon: u64) -> Self {
        assert!(pools > 0, "need at least one pool");
        assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
        PerPoolParams {
            pools,
            machines_per_pool: 96,
            cores_per_machine: 4,
            memory_mb: 8_192,
            rate_per_pool: 0.50,
            scale,
            horizon,
            runtime_median: 200.0,
            runtime_sigma: 1.1,
            tail_weight: 0.02,
            high_bursts: false,
            seed: 20_101_108,
        }
    }

    /// Adds a per-pool high-priority burst stream.
    pub fn with_high_bursts(mut self) -> Self {
        self.high_bursts = true;
        self
    }

    /// Builds the uniform site.
    pub fn build_site(&self) -> SiteSpec {
        let machines = ((f64::from(self.machines_per_pool) * self.scale).round() as u32).max(1);
        SiteSpec {
            pools: (0..self.pools)
                .map(|p| {
                    PoolConfig::uniform(PoolId(p), machines, self.cores_per_machine, self.memory_mb)
                })
                .collect(),
        }
    }

    /// Builds the workload: per pool, one pinned low-priority stream and —
    /// with [`Self::with_high_bursts`] — one pinned bursty stream.
    pub fn build_workload(&self) -> WorkloadSpec {
        let mut spec = WorkloadSpec::new(0, self.horizon);
        let runtime = Mixture::new(
            LogNormal::with_median(self.runtime_median, self.runtime_sigma),
            Pareto::new(2_000.0, 1.5),
            self.tail_weight,
        );
        for p in 0..self.pools {
            let low = JobClass::new(format!("pool{p}-low"), 0, Box::new(runtime.clone()))
                .with_cores(WeightedChoice::new(&[
                    (1.0, 0.75),
                    (2.0, 0.20),
                    (4.0, 0.05),
                ]))
                .with_memory(WeightedChoice::new(&[
                    (512.0, 0.3),
                    (2048.0, 0.5),
                    (6144.0, 0.2),
                ]))
                .with_affinity(AffinityPicker::Fixed(vec![p]));
            spec = spec.stream(Stream::new(
                low,
                Box::new(PoissonArrivals::new(self.rate_per_pool * self.scale)),
            ));
            if self.high_bursts {
                let high = JobClass::new(format!("pool{p}-high"), 10, Box::new(runtime.clone()))
                    .with_cores(WeightedChoice::new(&[(1.0, 0.8), (2.0, 0.2)]))
                    .with_memory(WeightedChoice::new(&[(1024.0, 0.6), (4096.0, 0.4)]))
                    .with_affinity(AffinityPicker::Fixed(vec![p]));
                spec = spec.stream(Stream::new(
                    high,
                    Box::new(BurstArrivals::new(
                        (0.02 * self.rate_per_pool * self.scale).max(1e-9),
                        (3.0 * self.rate_per_pool * self.scale).max(2e-9),
                        3_000.0,
                        400.0,
                    )),
                ));
            }
        }
        spec
    }

    /// Expected number of generated jobs (for memory-bound sanity checks).
    pub fn expected_jobs(&self) -> f64 {
        self.build_workload()
            .streams
            .iter()
            .map(|s| s.arrivals.rate())
            .sum::<f64>()
            * self.horizon as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_has_twenty_heterogeneous_pools() {
        let site = SiteSpec::paper_site(1.0);
        assert_eq!(site.pools.len(), POOL_COUNT as usize);
        // Pools differ in size.
        let sizes: Vec<usize> = site.pools.iter().map(|p| p.machines.len()).collect();
        assert!(sizes[0] > sizes[10] && sizes[10] > sizes[19]);
        // Mixed machine shapes exist.
        let pool = &site.pools[0];
        let cores: std::collections::HashSet<u32> = pool.machines.iter().map(|m| m.cores).collect();
        assert!(cores.contains(&2) && cores.contains(&4) && cores.contains(&8));
    }

    #[test]
    fn scale_shrinks_site_proportionally() {
        let full = SiteSpec::paper_site(1.0);
        let tenth = SiteSpec::paper_site(0.1);
        let ratio = f64::from(tenth.total_cores()) / f64::from(full.total_cores());
        assert!((ratio - 0.1).abs() < 0.02, "core ratio {ratio}");
    }

    #[test]
    fn halved_site_has_half_the_cores() {
        let site = SiteSpec::paper_site(0.2);
        let halved = site.halved();
        let ratio = f64::from(halved.total_cores()) / f64::from(site.total_cores());
        assert!((0.45..=0.55).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn normal_week_job_count_matches_paper_scale() {
        let params = ScenarioParams::normal_week(1.0);
        let expected = params.expected_jobs();
        // The paper's busy week contains 248 000 jobs.
        assert!(
            (200_000.0..300_000.0).contains(&expected),
            "expected jobs {expected}"
        );
    }

    #[test]
    fn small_scale_trace_generates_quickly_and_matches_expectation() {
        let params = ScenarioParams::normal_week(0.02);
        let trace = params.generate_trace();
        let expected = params.expected_jobs();
        let actual = trace.len() as f64;
        assert!(
            (actual / expected - 1.0).abs() < 0.25,
            "actual {actual} vs expected {expected}"
        );
        // High-priority jobs exist and are pool-restricted.
        let high: Vec<_> = trace.iter().filter(|r| r.priority == 10).collect();
        assert!(!high.is_empty());
        assert!(high.iter().all(|r| !r.affinity.is_empty()));
    }

    #[test]
    fn offered_load_targets_forty_percent_utilization() {
        let params = ScenarioParams::normal_week(0.05);
        let offered = params.build_workload().offered_cores();
        let capacity = f64::from(params.build_site().total_cores());
        let util = offered / capacity;
        assert!(
            (0.25..0.60).contains(&util),
            "expected ~40% offered utilization, got {util:.2}"
        );
    }

    #[test]
    fn high_suspension_week_is_heavier() {
        let normal = ScenarioParams::normal_week(0.05);
        let heavy = ScenarioParams::high_suspension_week(0.05);
        assert!(heavy.expected_jobs() > normal.expected_jobs());
        let ho = heavy.build_workload().offered_cores();
        let no = normal.build_workload().offered_cores();
        assert!(ho > no);
    }

    #[test]
    fn year_horizon() {
        let params = ScenarioParams::year(0.05);
        assert_eq!(params.horizon, YEAR_MINUTES);
    }

    #[test]
    fn traces_are_reproducible() {
        let p = ScenarioParams::normal_week(0.01);
        assert_eq!(p.generate_trace(), p.generate_trace());
    }

    #[test]
    fn per_pool_scenario_is_pool_major_and_calibrated() {
        let params = PerPoolParams::new(8, 0.25, 2_000).with_high_bursts();
        let spec = params.build_workload();
        spec.validate_pool_major(params.pools).expect("pool-major");
        let site = params.build_site();
        assert_eq!(site.pools.len(), 8);
        // Without the burst lane the offered load sits below saturation
        // (the burst variant intentionally saturates to drive suspensions).
        let calm = PerPoolParams::new(8, 0.25, 2_000).build_workload();
        let util = calm.offered_cores() / f64::from(site.total_cores());
        assert!((0.2..1.0).contains(&util), "offered utilization {util:.2}");
        // Expected job count tracks the configured rates.
        let trace = spec.generate(params.seed);
        let expected = params.expected_jobs();
        let actual = trace.len() as f64;
        assert!(
            (actual / expected - 1.0).abs() < 0.3,
            "actual {actual} vs expected {expected}"
        );
    }
}
