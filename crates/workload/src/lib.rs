//! # netbatch-workload
//!
//! The trace substrate for the NetBatch dynamic-rescheduling reproduction.
//! The paper's inputs — a year of job-execution traces from 20 pools — are
//! Intel-proprietary, so this crate provides the substitute (DESIGN.md §2,
//! S3):
//!
//! * [`trace`] — the portable record/trace model carrying exactly the
//!   fields the paper's trace carries;
//! * [`io`] — CSV import/export so real traces with the same schema can be
//!   swapped in;
//! * [`distributions`] — heavy-tailed samplers (log-normal body, Pareto
//!   tail) implemented in-tree;
//! * [`generator`] — arrival processes (Poisson background, MMPP bursts),
//!   job classes and pool-affinity assignment;
//! * [`scenarios`] — presets calibrated to every aggregate the paper
//!   publishes (40% utilization, 248k-job busy week, bursty pinned
//!   high-priority streams);
//! * [`analysis`] — offline trace statistics used to validate the
//!   synthetic workloads.
//!
//! ## Example
//!
//! ```
//! use netbatch_workload::scenarios::ScenarioParams;
//! use netbatch_workload::analysis::TraceAnalysis;
//!
//! let params = ScenarioParams::normal_week(0.01); // 1% scale for speed
//! let trace = params.generate_trace();
//! let analysis = TraceAnalysis::of(&trace);
//! assert!(analysis.jobs > 100);
//! assert!(analysis.high_fraction() < 0.5);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod distributions;
pub mod generator;
pub mod io;
pub mod scenarios;
pub mod stream;
pub mod trace;

pub use generator::{JobClass, Stream, WorkloadSpec};
pub use scenarios::{ScenarioParams, SiteSpec};
pub use stream::TraceStream;
pub use trace::{Trace, TraceRecord};
