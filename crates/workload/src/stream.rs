//! Lazy, pull-based trace generation.
//!
//! [`TraceStream`] yields the exact record sequence
//! [`WorkloadSpec::generate`] would materialize — same seed derivation, same
//! per-stream RNG substreams, same (submit-minute, stream-index) merge order
//! — but holds only O(streams) state: one arrival cursor and one lookahead
//! record per stream. This is what lets year-scale runs keep memory flat
//! (ROADMAP: "streaming trace generation … so memory stays flat while event
//! counts reach the hundreds of millions") and what lets the sharded kernel
//! move generation out of the coordinator's serial section: each shard
//! builds a [`TraceStream`] filtered to its own pools' streams and pulls
//! arrivals epoch by epoch.

use netbatch_sim_engine::rng::DetRng;

use crate::generator::arrivals::ArrivalCursor;
use crate::generator::{AffinityPicker, Stream, WorkloadSpec};
use crate::trace::TraceRecord;

/// Task-id stride per stream; must match [`WorkloadSpec::generate`].
const TASK_STRIDE: u32 = 1 << 24;

impl Stream {
    /// The single pool this stream is pinned to, if its affinity is a
    /// one-pool `Fixed` set. Shard-local generation requires every stream
    /// to be pinned so a stream's jobs never leave its owning shard.
    pub fn pinned_pool(&self) -> Option<u16> {
        match &self.class.affinity {
            AffinityPicker::Fixed(pools) if pools.len() == 1 => Some(pools[0]),
            _ => None,
        }
    }
}

impl WorkloadSpec {
    /// Checks the pool-decomposition contract required by shard-local
    /// streaming generation: every stream pinned to exactly one valid pool,
    /// with pinned pools non-decreasing across stream index. The monotone
    /// order makes pool-major traversal identical to stream-major
    /// traversal, so streaming job ids match the materialized trace's dense
    /// submission-order ids exactly.
    pub fn validate_pool_major(&self, pool_count: u16) -> Result<(), String> {
        let mut last_pool = 0u16;
        for (i, stream) in self.streams.iter().enumerate() {
            let pool = stream.pinned_pool().ok_or_else(|| {
                format!("stream {i} is not pinned to a single pool (streaming needs Fixed([p]))")
            })?;
            if pool >= pool_count {
                return Err(format!(
                    "stream {i} is pinned to pool {pool}, but the site has {pool_count} pools"
                ));
            }
            if pool < last_pool {
                return Err(format!(
                    "stream {i} (pool {pool}) breaks the non-decreasing pool order \
                     required for dense streaming job ids"
                ));
            }
            last_pool = pool;
        }
        Ok(())
    }
}

/// One stream's lazy generation state.
struct Lane {
    /// Index of this stream in the spec (the RNG substream index).
    stream_idx: usize,
    cursor: Box<dyn ArrivalCursor + Send>,
    job_rng: DetRng,
    /// Next arrival minute not yet emitted, if any.
    pending: Option<u64>,
    /// Per-stream record sequence number (drives task grouping).
    seq: u64,
    task_base: u32,
}

/// A lazy iterator over a workload's trace records in canonical order.
///
/// Canonical order is (submit minute, stream index, per-stream sequence) —
/// exactly what `Trace::from_records`'s stable sort produces from the
/// batch generator's stream-major record list.
pub struct TraceStream<'a> {
    spec: &'a WorkloadSpec,
    lanes: Vec<Lane>,
}

impl<'a> TraceStream<'a> {
    /// Streams every lane of the workload. Identical output to
    /// `spec.generate(seed)` record-for-record.
    pub fn new(spec: &'a WorkloadSpec, seed: u64) -> Self {
        Self::filtered(spec, seed, |_| true)
    }

    /// Streams only the lanes whose stream index passes `keep` — the
    /// shard-local view. Kept lanes draw from the same RNG substreams they
    /// would in a full run, so a filtered stream is the exact subsequence
    /// of the full stream.
    pub fn filtered(
        spec: &'a WorkloadSpec,
        seed: u64,
        mut keep: impl FnMut(usize) -> bool,
    ) -> Self {
        let root = DetRng::from_seed_u64(seed);
        let lanes = spec
            .streams
            .iter()
            .enumerate()
            .filter(|(i, _)| keep(*i))
            .map(|(i, stream)| {
                let arr_rng = root.stream_indexed("arrivals", i as u64);
                let job_rng = root.stream_indexed("jobs", i as u64);
                let mut cursor = stream.arrivals.cursor(arr_rng, spec.start, spec.end);
                let pending = cursor.next_arrival();
                Lane {
                    stream_idx: i,
                    cursor,
                    job_rng,
                    pending,
                    seq: 0,
                    task_base: (i as u32) * TASK_STRIDE,
                }
            })
            .collect();
        TraceStream { spec, lanes }
    }

    /// The minute of the next record, or `None` when exhausted.
    pub fn peek_minute(&self) -> Option<u64> {
        self.lanes.iter().filter_map(|l| l.pending).min()
    }

    /// Pulls the next record in canonical order, with its stream index.
    /// Job-attribute draws happen here, at emission time, so pulling is
    /// what pays the generation cost — one record at a time.
    pub fn next_record(&mut self) -> Option<(usize, TraceRecord)> {
        let minute = self.peek_minute()?;
        // Ties break toward the lowest stream index, matching the stable
        // sort over the stream-major batch list.
        let lane = self
            .lanes
            .iter_mut()
            .find(|l| l.pending == Some(minute))
            .expect("peeked minute must belong to a lane");
        let class = &self.spec.streams[lane.stream_idx].class;
        let record = class.instantiate(&mut lane.job_rng, lane.seq, minute, lane.task_base);
        lane.seq += 1;
        lane.pending = lane.cursor.next_arrival();
        Some((lane.stream_idx, record))
    }

    /// Drains every record at the given minute (in canonical order) into
    /// `out`. Returns the number of records drained.
    pub fn drain_minute(&mut self, minute: u64, out: &mut Vec<TraceRecord>) -> usize {
        let mut n = 0;
        while self.peek_minute() == Some(minute) {
            let (_, rec) = self.next_record().expect("peeked record");
            out.push(rec);
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::Constant;
    use crate::generator::{BurstArrivals, JobClass, PoissonArrivals};
    use crate::scenarios::ScenarioParams;

    fn pinned_spec() -> WorkloadSpec {
        let mut spec = WorkloadSpec::new(0, 30_000);
        for pool in 0..4u16 {
            spec = spec
                .stream(Stream::new(
                    JobClass::new(format!("low{pool}"), 0, Box::new(Constant(60.0)))
                        .with_affinity(AffinityPicker::Fixed(vec![pool])),
                    Box::new(PoissonArrivals::new(0.2)),
                ))
                .stream(Stream::new(
                    JobClass::new(format!("high{pool}"), 10, Box::new(Constant(30.0)))
                        .with_affinity(AffinityPicker::Fixed(vec![pool])),
                    Box::new(BurstArrivals::new(0.01, 0.5, 2000.0, 300.0)),
                ));
        }
        spec
    }

    #[test]
    fn streaming_matches_materialized_generator() {
        for seed in [7u64, 42, 20_101_108] {
            let spec = pinned_spec();
            let batch = spec.generate(seed);
            let mut stream = TraceStream::new(&spec, seed);
            let mut lazy = Vec::new();
            while let Some((_, rec)) = stream.next_record() {
                lazy.push(rec);
            }
            assert_eq!(batch.records(), &lazy[..], "seed {seed}");
        }
    }

    #[test]
    fn streaming_matches_scenario_preset() {
        // The paper-calibrated preset (mixture runtimes, bursty pinned
        // high streams) exercises every distribution through the lazy path.
        let params = ScenarioParams::normal_week(0.02);
        let spec = params.build_workload();
        let batch = spec.generate(params.seed);
        let mut stream = TraceStream::new(&spec, params.seed);
        let mut lazy = Vec::new();
        while let Some((_, rec)) = stream.next_record() {
            lazy.push(rec);
        }
        assert_eq!(batch.records(), &lazy[..]);
    }

    #[test]
    fn filtered_stream_is_exact_subsequence() {
        let spec = pinned_spec();
        let seed = 11u64;
        let mut full = TraceStream::new(&spec, seed);
        let mut all = Vec::new();
        while let Some(pair) = full.next_record() {
            all.push(pair);
        }
        // Union of per-pool filtered streams == full stream, per lane.
        for pool in 0..4u16 {
            let mut filtered =
                TraceStream::filtered(&spec, seed, |i| spec.streams[i].pinned_pool() == Some(pool));
            let mut got = Vec::new();
            while let Some(pair) = filtered.next_record() {
                got.push(pair);
            }
            let want: Vec<_> = all
                .iter()
                .filter(|(i, _)| spec.streams[*i].pinned_pool() == Some(pool))
                .cloned()
                .collect();
            assert_eq!(want, got, "pool {pool}");
        }
    }

    #[test]
    fn drain_minute_pulls_whole_epochs() {
        let spec = pinned_spec();
        let mut stream = TraceStream::new(&spec, 3);
        let mut by_minute = Vec::new();
        while let Some(m) = stream.peek_minute() {
            let mut recs = Vec::new();
            stream.drain_minute(m, &mut recs);
            assert!(!recs.is_empty());
            assert!(recs.iter().all(|r| r.submit_minute == m));
            by_minute.push(m);
        }
        assert!(by_minute.windows(2).all(|w| w[0] < w[1]));
        let flat: usize = spec.generate(3).records().len();
        let mut stream2 = TraceStream::new(&spec, 3);
        let mut total = 0;
        while let Some(m) = stream2.peek_minute() {
            let mut recs = Vec::new();
            total += stream2.drain_minute(m, &mut recs);
        }
        assert_eq!(total, flat);
    }

    #[test]
    fn pool_major_validation() {
        assert!(pinned_spec().validate_pool_major(4).is_ok());
        assert!(pinned_spec().validate_pool_major(3).is_err());
        // Unpinned stream rejected.
        let unpinned = WorkloadSpec::new(0, 100).stream(Stream::new(
            JobClass::new("any", 0, Box::new(Constant(10.0))),
            Box::new(PoissonArrivals::new(0.1)),
        ));
        assert!(unpinned.validate_pool_major(4).is_err());
        // Decreasing pool order rejected.
        let backwards = WorkloadSpec::new(0, 100)
            .stream(Stream::new(
                JobClass::new("b", 0, Box::new(Constant(10.0)))
                    .with_affinity(AffinityPicker::Fixed(vec![1])),
                Box::new(PoissonArrivals::new(0.1)),
            ))
            .stream(Stream::new(
                JobClass::new("a", 0, Box::new(Constant(10.0)))
                    .with_affinity(AffinityPicker::Fixed(vec![0])),
                Box::new(PoissonArrivals::new(0.1)),
            ));
        assert!(backwards.validate_pool_major(4).is_err());
    }
}
