//! Random-variate samplers for workload synthesis.
//!
//! The NetBatch trace is proprietary, so we synthesize workloads from
//! distributions whose aggregate behaviour matches what the paper reports:
//! heavy-tailed runtimes (long-tailed completion/suspension distributions,
//! jobs needing >100k minutes exist), bursty high-priority arrivals, and a
//! ~40% mean utilization. Implemented here rather than pulling `rand_distr`
//! to stay within the approved dependency set (see DESIGN.md §7).

use netbatch_sim_engine::rng::DetRng;

/// A distribution over non-negative `f64` values.
///
/// `sample` takes `&self`; samplers are stateless value types so streams
/// stay reproducible and shareable across generator components.
pub trait Distribution: std::fmt::Debug {
    /// Draws one variate using the provided RNG.
    fn sample(&self, rng: &mut DetRng) -> f64;

    /// The distribution's mean, used for workload calibration (estimating
    /// offered load before running the simulator).
    fn mean(&self) -> f64;
}

/// Always returns the same value. Useful in tests and as a degenerate
/// runtime distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant(pub f64);

impl Distribution for Constant {
    fn sample(&self, _rng: &mut DetRng) -> f64 {
        self.0
    }

    fn mean(&self) -> f64 {
        self.0
    }
}

/// Exponential distribution with the given mean (minutes between arrivals,
/// for Poisson processes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics unless `mean > 0`.
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean > 0.0 && mean.is_finite(), "mean must be positive");
        Exponential { mean }
    }

    /// Creates an exponential distribution with the given rate (events per
    /// minute).
    ///
    /// # Panics
    ///
    /// Panics unless `rate > 0`.
    pub fn with_rate(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        Exponential { mean: 1.0 / rate }
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        // Inverse CDF; 1 - u avoids ln(0).
        -self.mean * (1.0 - rng.next_f64()).ln()
    }

    fn mean(&self) -> f64 {
        self.mean
    }
}

/// Log-normal distribution parameterized by the underlying normal's
/// `mu`/`sigma` — the standard body model for batch-job runtimes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal from the underlying normal parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `sigma > 0` and both are finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite() && sigma > 0.0,
            "invalid log-normal parameters"
        );
        LogNormal { mu, sigma }
    }

    /// Creates a log-normal with a target *median* and sigma. The median of
    /// a log-normal is `exp(mu)`, which makes calibration against the
    /// paper's published medians direct.
    pub fn with_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0, "median must be positive");
        LogNormal::new(median.ln(), sigma)
    }

    /// One standard-normal variate via Box–Muller (the cosine branch only,
    /// so the sampler stays stateless).
    fn standard_normal(rng: &mut DetRng) -> f64 {
        let u1 = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = rng.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        (self.mu + self.sigma * Self::standard_normal(rng)).exp()
    }

    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// Pareto (power-law) distribution: the tail model for the >100k-minute
/// jobs the paper observes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto with minimum value `scale` and shape `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless both are positive and finite.
    pub fn new(scale: f64, alpha: f64) -> Self {
        assert!(
            scale > 0.0 && alpha > 0.0 && scale.is_finite() && alpha.is_finite(),
            "invalid Pareto parameters"
        );
        Pareto { scale, alpha }
    }
}

impl Distribution for Pareto {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        let u = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
        self.scale / u.powf(1.0 / self.alpha)
    }

    fn mean(&self) -> f64 {
        if self.alpha <= 1.0 {
            f64::INFINITY
        } else {
            self.alpha * self.scale / (self.alpha - 1.0)
        }
    }
}

/// A two-component mixture: with probability `tail_weight` sample the tail,
/// otherwise the body. Log-normal body + Pareto tail is our runtime model.
#[derive(Debug, Clone)]
pub struct Mixture<B, T> {
    body: B,
    tail: T,
    tail_weight: f64,
}

impl<B: Distribution, T: Distribution> Mixture<B, T> {
    /// Creates a mixture.
    ///
    /// # Panics
    ///
    /// Panics unless `tail_weight ∈ [0, 1]`.
    pub fn new(body: B, tail: T, tail_weight: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&tail_weight),
            "tail weight must be a probability"
        );
        Mixture {
            body,
            tail,
            tail_weight,
        }
    }
}

impl<B: Distribution, T: Distribution> Distribution for Mixture<B, T> {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        if rng.next_f64() < self.tail_weight {
            self.tail.sample(rng)
        } else {
            self.body.sample(rng)
        }
    }

    fn mean(&self) -> f64 {
        self.tail_weight * self.tail.mean() + (1.0 - self.tail_weight) * self.body.mean()
    }
}

/// Uniform distribution over `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo < hi && lo.is_finite() && hi.is_finite(), "need lo < hi");
        Uniform { lo, hi }
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        self.lo + (self.hi - self.lo) * rng.next_f64()
    }

    fn mean(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }
}

/// An empirical distribution built from observed samples (inverse-CDF
/// sampling). The bridge for users with real traces: fit runtimes or
/// memory footprints directly from observed data instead of choosing a
/// parametric family.
#[derive(Debug, Clone, PartialEq)]
pub struct Empirical {
    sorted: Vec<f64>,
}

impl Empirical {
    /// Builds an empirical distribution from observations.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains NaN.
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().collect();
        assert!(!sorted.is_empty(), "empirical distribution needs samples");
        assert!(sorted.iter().all(|x| !x.is_nan()), "NaN sample rejected");
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        Empirical { sorted }
    }

    /// Number of underlying observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if built from a single observation (degenerate).
    pub fn is_empty(&self) -> bool {
        false // construction guarantees at least one sample
    }
}

impl Distribution for Empirical {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        // Bootstrap resampling: each observation is drawn with equal
        // probability, so the resampling distribution matches the sample
        // exactly (including its mean — important for load calibration).
        self.sorted[rng.next_below(self.sorted.len() as u64) as usize]
    }

    fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }
}

/// Weighted choice over a small discrete set (core counts, memory sizes).
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedChoice {
    values: Vec<f64>,
    cumulative: Vec<f64>,
}

impl WeightedChoice {
    /// Creates a weighted choice from `(value, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if empty, or any weight is negative, or all weights are zero.
    pub fn new(pairs: &[(f64, f64)]) -> Self {
        assert!(
            !pairs.is_empty(),
            "weighted choice needs at least one value"
        );
        assert!(
            pairs.iter().all(|&(_, w)| w >= 0.0 && w.is_finite()),
            "weights must be non-negative"
        );
        let total: f64 = pairs.iter().map(|&(_, w)| w).sum();
        assert!(total > 0.0, "at least one weight must be positive");
        let mut cumulative = Vec::with_capacity(pairs.len());
        let mut acc = 0.0;
        for &(_, w) in pairs {
            acc += w / total;
            cumulative.push(acc);
        }
        WeightedChoice {
            values: pairs.iter().map(|&(v, _)| v).collect(),
            cumulative,
        }
    }
}

impl Distribution for WeightedChoice {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        let u = rng.next_f64();
        let idx = self.cumulative.partition_point(|&c| c < u);
        self.values[idx.min(self.values.len() - 1)]
    }

    fn mean(&self) -> f64 {
        let mut prev = 0.0;
        self.values
            .iter()
            .zip(&self.cumulative)
            .map(|(&v, &c)| {
                let p = c - prev;
                prev = c;
                v * p
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn empirical_mean(d: &impl Distribution, n: usize, seed: u64) -> f64 {
        let mut rng = DetRng::from_seed_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let d = Constant(7.5);
        let mut rng = DetRng::from_seed_u64(0);
        assert_eq!(d.sample(&mut rng), 7.5);
        assert_eq!(d.mean(), 7.5);
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::with_mean(20.0);
        let m = empirical_mean(&d, 200_000, 1);
        assert!((m - 20.0).abs() < 0.5, "empirical mean {m}");
        let r = Exponential::with_rate(0.25);
        assert!((r.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn lognormal_median_and_mean() {
        let d = LogNormal::with_median(100.0, 1.0);
        let mut rng = DetRng::from_seed_u64(2);
        let mut samples: Vec<f64> = (0..100_001).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[50_000];
        assert!((median / 100.0 - 1.0).abs() < 0.05, "median {median}");
        let m = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((m / d.mean() - 1.0).abs() < 0.1, "mean {m} vs {}", d.mean());
    }

    #[test]
    fn pareto_tail_is_heavy() {
        let d = Pareto::new(10.0, 1.5);
        let mut rng = DetRng::from_seed_u64(3);
        let n = 100_000;
        let big = (0..n).filter(|_| d.sample(&mut rng) > 1000.0).count();
        // P(X > 1000) = (10/1000)^1.5 ≈ 0.001.
        assert!(big > 40 && big < 250, "tail count {big}");
        assert!((d.mean() - 30.0).abs() < 1e-12);
        assert_eq!(Pareto::new(1.0, 0.9).mean(), f64::INFINITY);
    }

    #[test]
    fn mixture_mean_is_weighted() {
        let m = Mixture::new(Constant(10.0), Constant(1000.0), 0.01);
        assert!((m.mean() - 19.9).abs() < 1e-9);
        let em = empirical_mean(&m, 100_000, 4);
        assert!((em / m.mean() - 1.0).abs() < 0.1, "empirical {em}");
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Uniform::new(5.0, 15.0);
        let mut rng = DetRng::from_seed_u64(5);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((5.0..15.0).contains(&x));
        }
        assert_eq!(d.mean(), 10.0);
    }

    #[test]
    fn weighted_choice_frequencies() {
        let d = WeightedChoice::new(&[(1.0, 0.5), (2.0, 0.25), (4.0, 0.25)]);
        let mut rng = DetRng::from_seed_u64(6);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..100_000 {
            *counts.entry(d.sample(&mut rng) as u64).or_insert(0u32) += 1;
        }
        assert!((f64::from(counts[&1]) / 100_000.0 - 0.5).abs() < 0.02);
        assert!((f64::from(counts[&2]) / 100_000.0 - 0.25).abs() < 0.02);
        assert!((d.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_resamples_the_input_range() {
        let data = vec![10.0, 20.0, 30.0, 40.0, 1000.0];
        let d = Empirical::from_samples(data.clone());
        assert_eq!(d.len(), 5);
        assert!((d.mean() - 220.0).abs() < 1e-9);
        let mut rng = DetRng::from_seed_u64(8);
        for _ in 0..500 {
            let x = d.sample(&mut rng);
            assert!((10.0..=1000.0).contains(&x));
        }
        // Empirical mean of resamples approaches the sample mean.
        let m = empirical_mean(&d, 100_000, 9);
        assert!((m / d.mean() - 1.0).abs() < 0.1, "resample mean {m}");
    }

    #[test]
    fn empirical_single_sample_is_constant() {
        let d = Empirical::from_samples([7.0]);
        let mut rng = DetRng::from_seed_u64(1);
        assert_eq!(d.sample(&mut rng), 7.0);
    }

    #[test]
    #[should_panic(expected = "needs samples")]
    fn empirical_rejects_empty() {
        Empirical::from_samples(std::iter::empty());
    }

    #[test]
    #[should_panic(expected = "mean must be positive")]
    fn exponential_rejects_bad_mean() {
        Exponential::with_mean(0.0);
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn weighted_choice_rejects_zero_weights() {
        WeightedChoice::new(&[(1.0, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "tail weight")]
    fn mixture_rejects_bad_weight() {
        Mixture::new(Constant(1.0), Constant(2.0), 1.5);
    }

    proptest! {
        /// All samplers produce non-negative, finite values for valid
        /// parameter ranges.
        #[test]
        fn prop_samples_are_finite(seed in any::<u64>(),
                                   mean in 0.1f64..1e4,
                                   sigma in 0.1f64..3.0,
                                   alpha in 1.1f64..4.0) {
            let mut rng = DetRng::from_seed_u64(seed);
            let e = Exponential::with_mean(mean);
            let l = LogNormal::with_median(mean, sigma);
            let p = Pareto::new(mean, alpha);
            for _ in 0..20 {
                for v in [e.sample(&mut rng), l.sample(&mut rng), p.sample(&mut rng)] {
                    prop_assert!(v.is_finite() && v >= 0.0);
                }
            }
        }

        /// Pareto samples never fall below the scale parameter.
        #[test]
        fn prop_pareto_lower_bound(seed in any::<u64>(), scale in 0.5f64..100.0) {
            let d = Pareto::new(scale, 2.0);
            let mut rng = DetRng::from_seed_u64(seed);
            for _ in 0..50 {
                prop_assert!(d.sample(&mut rng) >= scale);
            }
        }
    }
}
