//! The synthetic trace generator: streams of job classes driven by arrival
//! processes, merged into one submission-ordered [`Trace`].
//!
//! This is the stand-in for the proprietary NetBatch trace (see DESIGN.md
//! §2, S3). Each *stream* pairs a [`JobClass`] with an
//! [`ArrivalProcess`]; the generator runs every stream over the same window
//! with independent RNG substreams and merges the results, so adding or
//! re-parameterizing one stream never perturbs another.

pub mod affinity;
pub mod arrivals;
pub mod jobs;

use netbatch_sim_engine::rng::DetRng;

use crate::trace::Trace;

pub use affinity::AffinityPicker;
pub use arrivals::{ArrivalProcess, BurstArrivals, DiurnalArrivals, PoissonArrivals};
pub use jobs::JobClass;

/// One workload stream: a class of jobs and the process that submits them.
#[derive(Debug)]
pub struct Stream {
    /// The job population.
    pub class: JobClass,
    /// When its jobs arrive.
    pub arrivals: Box<dyn ArrivalProcess + Send + Sync>,
}

impl Stream {
    /// Pairs a class with an arrival process.
    pub fn new(class: JobClass, arrivals: Box<dyn ArrivalProcess + Send + Sync>) -> Self {
        Stream { class, arrivals }
    }

    /// Expected offered load of this stream in core-minutes per minute
    /// (i.e. the mean number of cores it keeps busy).
    pub fn offered_cores(&self) -> f64 {
        self.arrivals.rate() * self.class.mean_core_minutes()
    }
}

/// A complete workload description: streams over a common time window.
#[derive(Debug)]
pub struct WorkloadSpec {
    /// The streams to generate.
    pub streams: Vec<Stream>,
    /// Window start (minutes).
    pub start: u64,
    /// Window end (minutes, exclusive).
    pub end: u64,
}

impl WorkloadSpec {
    /// Creates a workload over `[start, end)` minutes.
    ///
    /// # Panics
    ///
    /// Panics unless `start < end`.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start < end, "workload window must be non-empty");
        WorkloadSpec {
            streams: Vec::new(),
            start,
            end,
        }
    }

    /// Adds a stream.
    pub fn stream(mut self, stream: Stream) -> Self {
        self.streams.push(stream);
        self
    }

    /// Expected total offered load in mean busy cores — divide by site
    /// capacity for the expected utilization, the paper's calibration
    /// target (~40% normal load).
    pub fn offered_cores(&self) -> f64 {
        self.streams.iter().map(Stream::offered_cores).sum()
    }

    /// Generates the trace. Deterministic in (`spec`, `seed`): every stream
    /// draws from its own substream of `seed`.
    pub fn generate(&self, seed: u64) -> Trace {
        let root = DetRng::from_seed_u64(seed);
        let mut records = Vec::new();
        // Task-id ranges are partitioned per stream so classes never share
        // a task id.
        let task_stride = 1u32 << 24;
        for (i, stream) in self.streams.iter().enumerate() {
            let mut arr_rng = root.stream_indexed("arrivals", i as u64);
            let mut job_rng = root.stream_indexed("jobs", i as u64);
            let arrivals = stream.arrivals.generate(&mut arr_rng, self.start, self.end);
            let task_base = (i as u32) * task_stride;
            for (seq, submit) in arrivals.into_iter().enumerate() {
                records.push(
                    stream
                        .class
                        .instantiate(&mut job_rng, seq as u64, submit, task_base),
                );
            }
        }
        Trace::from_records(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::Constant;

    fn simple_spec() -> WorkloadSpec {
        WorkloadSpec::new(0, 10_000)
            .stream(Stream::new(
                JobClass::new("low", 0, Box::new(Constant(60.0))),
                Box::new(PoissonArrivals::new(0.1)),
            ))
            .stream(Stream::new(
                JobClass::new("high", 10, Box::new(Constant(30.0))),
                Box::new(BurstArrivals::new(0.01, 0.5, 2000.0, 300.0)),
            ))
    }

    #[test]
    fn generates_sorted_merged_trace() {
        let trace = simple_spec().generate(42);
        assert!(!trace.is_empty());
        let minutes: Vec<u64> = trace.iter().map(|r| r.submit_minute).collect();
        assert!(minutes.windows(2).all(|w| w[0] <= w[1]));
        // Both classes present.
        assert!(trace.iter().any(|r| r.priority == 0));
        assert!(trace.iter().any(|r| r.priority == 10));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(simple_spec().generate(7), simple_spec().generate(7));
        assert_ne!(simple_spec().generate(7), simple_spec().generate(8));
    }

    #[test]
    fn adding_a_stream_does_not_perturb_existing_ones() {
        let base = simple_spec().generate(7);
        let extended = simple_spec()
            .stream(Stream::new(
                JobClass::new("extra", 5, Box::new(Constant(10.0))),
                Box::new(PoissonArrivals::new(0.05)),
            ))
            .generate(7);
        // Every record of the base trace must appear in the extended one.
        let base_low: Vec<_> = base.iter().filter(|r| r.priority == 0).collect();
        let ext_low: Vec<_> = extended.iter().filter(|r| r.priority == 0).collect();
        assert_eq!(base_low, ext_low);
    }

    #[test]
    fn offered_cores_estimates_load() {
        let spec = WorkloadSpec::new(0, 1000).stream(Stream::new(
            JobClass::new("c", 0, Box::new(Constant(100.0))),
            Box::new(PoissonArrivals::new(0.2)),
        ));
        // 0.2 jobs/min × 100 core-minutes each = 20 busy cores on average.
        assert!((spec.offered_cores() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn task_ids_do_not_collide_across_streams() {
        let spec = WorkloadSpec::new(0, 5000)
            .stream(Stream::new(
                JobClass::new("a", 0, Box::new(Constant(10.0))).with_task_size(5),
                Box::new(PoissonArrivals::new(0.1)),
            ))
            .stream(Stream::new(
                JobClass::new("b", 1, Box::new(Constant(10.0))).with_task_size(5),
                Box::new(PoissonArrivals::new(0.1)),
            ));
        let trace = spec.generate(3);
        let a_tasks: std::collections::HashSet<u32> = trace
            .iter()
            .filter(|r| r.priority == 0)
            .filter_map(|r| r.task)
            .collect();
        let b_tasks: std::collections::HashSet<u32> = trace
            .iter()
            .filter(|r| r.priority == 1)
            .filter_map(|r| r.task)
            .collect();
        assert!(!a_tasks.is_empty() && !b_tasks.is_empty());
        assert!(a_tasks.is_disjoint(&b_tasks));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_rejected() {
        WorkloadSpec::new(10, 10);
    }
}
