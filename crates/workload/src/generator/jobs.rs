//! Job classes: everything about a generated job except its arrival time.

use std::fmt;

use netbatch_sim_engine::rng::DetRng;

use crate::distributions::{Distribution, WeightedChoice};
use crate::generator::affinity::AffinityPicker;
use crate::trace::TraceRecord;

/// A population of statistically identical jobs (one priority class with
/// shared runtime/footprint/affinity distributions).
pub struct JobClass {
    /// Human-readable label (appears in analysis output).
    pub name: String,
    /// Priority level for every job in the class.
    pub priority: u8,
    /// Runtime distribution in minutes; samples are rounded to whole
    /// minutes with a 1-minute floor.
    pub runtime: Box<dyn Distribution + Send + Sync>,
    /// Core-count distribution.
    pub cores: WeightedChoice,
    /// Memory distribution in MB.
    pub memory_mb: WeightedChoice,
    /// Pool-affinity assignment.
    pub affinity: AffinityPicker,
    /// If set, consecutive jobs of this class are grouped into tasks of
    /// this size (the §2.2 "task" unit used by the campaign example).
    pub task_size: Option<u32>,
    /// Runtime samples are capped here to keep a single job from outliving
    /// any reasonable simulation horizon (the paper's trace itself is
    /// truncated at the one-year boundary).
    pub max_runtime: u64,
}

impl JobClass {
    /// Creates a class with the given name, priority and runtime
    /// distribution; footprint defaults to 1 core / 1 GB, affinity `Any`.
    pub fn new(
        name: impl Into<String>,
        priority: u8,
        runtime: Box<dyn Distribution + Send + Sync>,
    ) -> Self {
        JobClass {
            name: name.into(),
            priority,
            runtime,
            cores: WeightedChoice::new(&[(1.0, 1.0)]),
            memory_mb: WeightedChoice::new(&[(1024.0, 1.0)]),
            affinity: AffinityPicker::Any,
            task_size: None,
            max_runtime: 200_000,
        }
    }

    /// Sets the core-count distribution.
    pub fn with_cores(mut self, cores: WeightedChoice) -> Self {
        self.cores = cores;
        self
    }

    /// Sets the memory distribution.
    pub fn with_memory(mut self, memory_mb: WeightedChoice) -> Self {
        self.memory_mb = memory_mb;
        self
    }

    /// Sets the affinity picker.
    pub fn with_affinity(mut self, affinity: AffinityPicker) -> Self {
        self.affinity = affinity;
        self
    }

    /// Groups the class's jobs into tasks of `size` consecutive jobs.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn with_task_size(mut self, size: u32) -> Self {
        assert!(size > 0, "task size must be positive");
        self.task_size = Some(size);
        self
    }

    /// Caps sampled runtimes at `minutes`.
    ///
    /// # Panics
    ///
    /// Panics if `minutes` is zero.
    pub fn with_max_runtime(mut self, minutes: u64) -> Self {
        assert!(minutes > 0, "max runtime must be positive");
        self.max_runtime = minutes;
        self
    }

    /// Instantiates the `seq`-th job of this class, arriving at
    /// `submit_minute`. `task_base` offsets task ids so different classes
    /// never collide.
    pub fn instantiate(
        &self,
        rng: &mut DetRng,
        seq: u64,
        submit_minute: u64,
        task_base: u32,
    ) -> TraceRecord {
        let runtime = (self.runtime.sample(rng).round() as u64).clamp(1, self.max_runtime);
        let task = self
            .task_size
            .map(|size| task_base + (seq / u64::from(size)) as u32);
        TraceRecord {
            submit_minute,
            runtime_minutes: runtime,
            cores: self.cores.sample(rng) as u32,
            memory_mb: self.memory_mb.sample(rng) as u64,
            priority: self.priority,
            affinity: self.affinity.pick(rng),
            task,
        }
    }

    /// Mean offered load of one job in core-minutes (runtime mean × mean
    /// cores), used for utilization calibration.
    pub fn mean_core_minutes(&self) -> f64 {
        self.runtime.mean().min(self.max_runtime as f64) * self.cores.mean()
    }
}

impl fmt::Debug for JobClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobClass")
            .field("name", &self.name)
            .field("priority", &self.priority)
            .field("mean_runtime", &self.runtime.mean())
            .field("affinity", &self.affinity)
            .field("task_size", &self.task_size)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::Constant;

    fn class() -> JobClass {
        JobClass::new("test", 0, Box::new(Constant(100.0)))
    }

    #[test]
    fn instantiate_fills_fields() {
        let c = class()
            .with_cores(WeightedChoice::new(&[(2.0, 1.0)]))
            .with_memory(WeightedChoice::new(&[(2048.0, 1.0)]));
        let mut rng = DetRng::from_seed_u64(0);
        let r = c.instantiate(&mut rng, 0, 42, 0);
        assert_eq!(r.submit_minute, 42);
        assert_eq!(r.runtime_minutes, 100);
        assert_eq!(r.cores, 2);
        assert_eq!(r.memory_mb, 2048);
        assert_eq!(r.priority, 0);
        assert!(r.affinity.is_empty());
        assert_eq!(r.task, None);
    }

    #[test]
    fn runtime_is_capped_and_floored() {
        let huge = class().with_max_runtime(50);
        let mut rng = DetRng::from_seed_u64(1);
        assert_eq!(huge.instantiate(&mut rng, 0, 0, 0).runtime_minutes, 50);
        let tiny = JobClass::new("t", 0, Box::new(Constant(0.0)));
        assert_eq!(tiny.instantiate(&mut rng, 0, 0, 0).runtime_minutes, 1);
    }

    #[test]
    fn task_grouping_batches_consecutive_jobs() {
        let c = class().with_task_size(3);
        let mut rng = DetRng::from_seed_u64(2);
        let tasks: Vec<Option<u32>> = (0..7)
            .map(|seq| c.instantiate(&mut rng, seq, 0, 100).task)
            .collect();
        assert_eq!(
            tasks,
            vec![
                Some(100),
                Some(100),
                Some(100),
                Some(101),
                Some(101),
                Some(101),
                Some(102)
            ]
        );
    }

    #[test]
    fn mean_core_minutes_for_calibration() {
        let c = class().with_cores(WeightedChoice::new(&[(1.0, 0.5), (3.0, 0.5)]));
        assert!((c.mean_core_minutes() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn debug_is_informative() {
        let s = format!("{:?}", class());
        assert!(s.contains("test"));
        assert!(s.contains("mean_runtime"));
    }

    #[test]
    #[should_panic(expected = "task size")]
    fn zero_task_size_rejected() {
        class().with_task_size(0);
    }
}
