//! Pool-affinity assignment for generated jobs.
//!
//! §2.3 of the paper: "latency sensitive jobs with high priority are usually
//! configured to only run in specific sets of physical pools", which is why
//! bursts overwhelm some pools while others idle. The picker reproduces
//! that: a job class can be unrestricted, pinned to a fixed subset, or given
//! a random small subset per burst/job.

use netbatch_sim_engine::rng::DetRng;

/// How a job class chooses its eligible pools.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AffinityPicker {
    /// No restriction (the empty affinity list = any pool).
    Any,
    /// Every job in the class is pinned to this subset.
    Fixed(Vec<u16>),
    /// Each job gets `subset_size` pools chosen uniformly without
    /// replacement from `0..pool_count`.
    RandomSubset {
        /// Number of pools at the site.
        pool_count: u16,
        /// Pools per job.
        subset_size: u16,
    },
}

impl AffinityPicker {
    /// Produces the affinity list for one job. `Any` yields the empty list
    /// (trace convention for "no restriction").
    ///
    /// # Panics
    ///
    /// Panics if a `RandomSubset` is configured with `subset_size` of zero
    /// or larger than `pool_count`.
    pub fn pick(&self, rng: &mut DetRng) -> Vec<u16> {
        match self {
            AffinityPicker::Any => Vec::new(),
            AffinityPicker::Fixed(pools) => pools.clone(),
            AffinityPicker::RandomSubset {
                pool_count,
                subset_size,
            } => {
                assert!(
                    *subset_size > 0 && subset_size <= pool_count,
                    "subset size must be in 1..=pool_count"
                );
                // Partial Fisher–Yates over a scratch index vector.
                let mut pools: Vec<u16> = (0..*pool_count).collect();
                for i in 0..*subset_size as usize {
                    let j = i + rng.next_below((*pool_count as usize - i) as u64) as usize;
                    pools.swap(i, j);
                }
                let mut subset: Vec<u16> = pools[..*subset_size as usize].to_vec();
                subset.sort_unstable();
                subset
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn any_is_empty() {
        let mut rng = DetRng::from_seed_u64(0);
        assert!(AffinityPicker::Any.pick(&mut rng).is_empty());
    }

    #[test]
    fn fixed_returns_the_subset() {
        let mut rng = DetRng::from_seed_u64(0);
        let p = AffinityPicker::Fixed(vec![2, 5]);
        assert_eq!(p.pick(&mut rng), vec![2, 5]);
    }

    #[test]
    fn random_subset_has_right_size_and_no_duplicates() {
        let mut rng = DetRng::from_seed_u64(1);
        let p = AffinityPicker::RandomSubset {
            pool_count: 20,
            subset_size: 4,
        };
        for _ in 0..100 {
            let s = p.pick(&mut rng);
            assert_eq!(s.len(), 4);
            assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted, unique: {s:?}");
            assert!(s.iter().all(|&x| x < 20));
        }
    }

    #[test]
    fn random_subset_covers_all_pools_eventually() {
        let mut rng = DetRng::from_seed_u64(2);
        let p = AffinityPicker::RandomSubset {
            pool_count: 8,
            subset_size: 2,
        };
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.extend(p.pick(&mut rng));
        }
        assert_eq!(seen.len(), 8, "every pool should appear");
    }

    #[test]
    #[should_panic(expected = "subset size")]
    fn oversized_subset_panics() {
        AffinityPicker::RandomSubset {
            pool_count: 3,
            subset_size: 4,
        }
        .pick(&mut DetRng::from_seed_u64(0));
    }

    proptest! {
        #[test]
        fn prop_subset_valid(seed in any::<u64>(), pool_count in 1u16..50, size_frac in 0.01f64..1.0) {
            let subset_size = ((f64::from(pool_count) * size_frac).ceil() as u16).clamp(1, pool_count);
            let p = AffinityPicker::RandomSubset { pool_count, subset_size };
            let s = p.pick(&mut DetRng::from_seed_u64(seed));
            prop_assert_eq!(s.len(), subset_size as usize);
            let unique: std::collections::HashSet<_> = s.iter().collect();
            prop_assert_eq!(unique.len(), s.len());
        }
    }
}
