//! Arrival processes: when jobs hit the virtual pool manager.
//!
//! Two models cover the paper's trace phenomenology: a homogeneous Poisson
//! stream for the low-priority background, and a two-state burst process
//! (an MMPP) for high-priority work — "higher priority jobs tend to be
//! bursty in nature … job suspension can spike suddenly due to the arrival
//! of a large number of higher priority jobs and last from several hours to
//! a week" (§2.3).

use std::fmt;

use netbatch_sim_engine::rng::DetRng;

use crate::distributions::{Distribution, Exponential};

/// Generates arrival instants (in minutes) over a half-open window.
pub trait ArrivalProcess: fmt::Debug {
    /// Returns the sorted arrival minutes in `[start, end)`.
    fn generate(&self, rng: &mut DetRng, start: u64, end: u64) -> Vec<u64>;

    /// The long-run arrival rate (jobs per minute), for calibration.
    fn rate(&self) -> f64;

    /// Returns a lazy cursor over the same window. The cursor MUST yield
    /// exactly the sequence `generate` would return for the same `rng`
    /// state — streaming runs rely on this to stay byte-identical to
    /// materialized runs. The default implementation materializes the whole
    /// window (correct for any process, O(window) memory); the built-in
    /// processes override it with O(1)-state incremental cursors.
    fn cursor(&self, mut rng: DetRng, start: u64, end: u64) -> Box<dyn ArrivalCursor + Send> {
        Box::new(MaterializedCursor {
            arrivals: self.generate(&mut rng, start, end).into(),
        })
    }
}

/// A pull-based iterator over arrival minutes, yielding them in order.
pub trait ArrivalCursor {
    /// The next arrival minute, or `None` when the window is exhausted.
    fn next_arrival(&mut self) -> Option<u64>;
}

/// Fallback cursor that holds a fully materialized window.
struct MaterializedCursor {
    arrivals: std::collections::VecDeque<u64>,
}

impl ArrivalCursor for MaterializedCursor {
    fn next_arrival(&mut self) -> Option<u64> {
        self.arrivals.pop_front()
    }
}

/// Homogeneous Poisson arrivals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonArrivals {
    rate_per_minute: f64,
}

impl PoissonArrivals {
    /// Creates a Poisson process with the given rate (jobs per minute).
    ///
    /// # Panics
    ///
    /// Panics unless `rate_per_minute` is positive and finite.
    pub fn new(rate_per_minute: f64) -> Self {
        assert!(
            rate_per_minute > 0.0 && rate_per_minute.is_finite(),
            "arrival rate must be positive"
        );
        PoissonArrivals { rate_per_minute }
    }
}

impl ArrivalProcess for PoissonArrivals {
    fn generate(&self, rng: &mut DetRng, start: u64, end: u64) -> Vec<u64> {
        let gap = Exponential::with_rate(self.rate_per_minute);
        let mut t = start as f64;
        let mut out = Vec::new();
        loop {
            t += gap.sample(rng);
            if t >= end as f64 {
                return out;
            }
            out.push(t as u64);
        }
    }

    fn rate(&self) -> f64 {
        self.rate_per_minute
    }

    fn cursor(&self, rng: DetRng, start: u64, end: u64) -> Box<dyn ArrivalCursor + Send> {
        Box::new(PoissonCursor {
            gap: Exponential::with_rate(self.rate_per_minute),
            t: start as f64,
            end: end as f64,
            rng,
            done: false,
        })
    }
}

/// Incremental state of [`PoissonArrivals::generate`]'s loop.
struct PoissonCursor {
    gap: Exponential,
    t: f64,
    end: f64,
    rng: DetRng,
    done: bool,
}

impl ArrivalCursor for PoissonCursor {
    fn next_arrival(&mut self) -> Option<u64> {
        if self.done {
            return None;
        }
        self.t += self.gap.sample(&mut self.rng);
        if self.t >= self.end {
            self.done = true;
            return None;
        }
        Some(self.t as u64)
    }
}

/// A two-state Markov-modulated Poisson process: alternating *quiet* and
/// *burst* phases with exponentially distributed lengths, each phase with
/// its own Poisson arrival rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstArrivals {
    /// Arrival rate during quiet phases (jobs/min).
    pub quiet_rate: f64,
    /// Arrival rate during burst phases (jobs/min).
    pub burst_rate: f64,
    /// Mean quiet-phase length in minutes.
    pub mean_quiet_len: f64,
    /// Mean burst-phase length in minutes.
    pub mean_burst_len: f64,
    /// Whether the process starts in a burst phase. The paper's evaluation
    /// window is chosen *because* it contains a burst; setting this true
    /// reproduces such burst-conditioned windows deterministically.
    pub start_in_burst: bool,
}

impl BurstArrivals {
    /// Creates a burst process.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive/non-finite or
    /// `burst_rate < quiet_rate`.
    pub fn new(quiet_rate: f64, burst_rate: f64, mean_quiet_len: f64, mean_burst_len: f64) -> Self {
        for v in [quiet_rate, burst_rate, mean_quiet_len, mean_burst_len] {
            assert!(
                v > 0.0 && v.is_finite(),
                "burst parameters must be positive"
            );
        }
        assert!(
            burst_rate >= quiet_rate,
            "burst rate must be at least the quiet rate"
        );
        BurstArrivals {
            quiet_rate,
            burst_rate,
            mean_quiet_len,
            mean_burst_len,
            start_in_burst: false,
        }
    }

    /// Starts the process in a burst phase (burst-conditioned windows).
    pub fn starting_in_burst(mut self) -> Self {
        self.start_in_burst = true;
        self
    }

    /// Fraction of time spent in burst phases.
    pub fn burst_fraction(&self) -> f64 {
        self.mean_burst_len / (self.mean_burst_len + self.mean_quiet_len)
    }
}

impl ArrivalProcess for BurstArrivals {
    fn generate(&self, rng: &mut DetRng, start: u64, end: u64) -> Vec<u64> {
        let quiet_len = Exponential::with_mean(self.mean_quiet_len);
        let burst_len = Exponential::with_mean(self.mean_burst_len);
        let mut out = Vec::new();
        let mut t = start as f64;
        let mut in_burst = self.start_in_burst;
        while t < end as f64 {
            let (phase_len, rate) = if in_burst {
                (burst_len.sample(rng), self.burst_rate)
            } else {
                (quiet_len.sample(rng), self.quiet_rate)
            };
            let phase_end = (t + phase_len).min(end as f64);
            let gap = Exponential::with_rate(rate);
            let mut a = t;
            loop {
                a += gap.sample(rng);
                if a >= phase_end {
                    break;
                }
                out.push(a as u64);
            }
            t = phase_end;
            in_burst = !in_burst;
        }
        out
    }

    fn rate(&self) -> f64 {
        let bf = self.burst_fraction();
        bf * self.burst_rate + (1.0 - bf) * self.quiet_rate
    }

    fn cursor(&self, rng: DetRng, start: u64, end: u64) -> Box<dyn ArrivalCursor + Send> {
        Box::new(BurstCursor {
            quiet_len: Exponential::with_mean(self.mean_quiet_len),
            burst_len: Exponential::with_mean(self.mean_burst_len),
            quiet_rate: self.quiet_rate,
            burst_rate: self.burst_rate,
            t: start as f64,
            end: end as f64,
            in_burst: self.start_in_burst,
            phase: None,
            rng,
        })
    }
}

/// Incremental state of [`BurstArrivals::generate`]'s nested loops: the
/// outer phase machine plus the inner within-phase arrival walk. Draw order
/// (phase length, then gaps until the phase boundary) matches `generate`.
struct BurstCursor {
    quiet_len: Exponential,
    burst_len: Exponential,
    quiet_rate: f64,
    burst_rate: f64,
    t: f64,
    end: f64,
    in_burst: bool,
    /// Current phase: (phase end, gap distribution, arrival walker `a`).
    phase: Option<(f64, Exponential, f64)>,
    rng: DetRng,
}

impl ArrivalCursor for BurstCursor {
    fn next_arrival(&mut self) -> Option<u64> {
        loop {
            match &mut self.phase {
                None => {
                    if self.t >= self.end {
                        return None;
                    }
                    let (phase_len, rate) = if self.in_burst {
                        (self.burst_len.sample(&mut self.rng), self.burst_rate)
                    } else {
                        (self.quiet_len.sample(&mut self.rng), self.quiet_rate)
                    };
                    let phase_end = (self.t + phase_len).min(self.end);
                    self.phase = Some((phase_end, Exponential::with_rate(rate), self.t));
                }
                Some((phase_end, gap, a)) => {
                    *a += gap.sample(&mut self.rng);
                    if *a >= *phase_end {
                        self.t = *phase_end;
                        self.in_burst = !self.in_burst;
                        self.phase = None;
                        continue;
                    }
                    return Some(*a as u64);
                }
            }
        }
    }
}

/// Arrivals with a diurnal (and weekend) profile: a base Poisson rate
/// modulated by hour-of-day and day-of-week factors. Real batch platforms
/// show strong submit-rate cycles — engineers submit during working hours —
/// which shape the utilization timeline (Figure 4's banding).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalArrivals {
    /// Mean arrival rate (jobs/min) averaged over a full week.
    pub mean_rate: f64,
    /// Peak-to-trough ratio of the daily cycle (1.0 = flat).
    pub day_swing: f64,
    /// Weekend rate as a fraction of the weekday rate.
    pub weekend_factor: f64,
}

impl DiurnalArrivals {
    /// Creates a diurnal process.
    ///
    /// # Panics
    ///
    /// Panics unless `mean_rate > 0`, `day_swing ≥ 1`, and
    /// `weekend_factor ∈ (0, 1]`.
    pub fn new(mean_rate: f64, day_swing: f64, weekend_factor: f64) -> Self {
        assert!(
            mean_rate > 0.0 && mean_rate.is_finite(),
            "rate must be positive"
        );
        assert!(
            day_swing >= 1.0 && day_swing.is_finite(),
            "day swing must be >= 1"
        );
        assert!(
            weekend_factor > 0.0 && weekend_factor <= 1.0,
            "weekend factor must be in (0, 1]"
        );
        DiurnalArrivals {
            mean_rate,
            day_swing,
            weekend_factor,
        }
    }

    /// The instantaneous rate multiplier at minute `t` (mean 1 over a week
    /// up to weekend scaling normalization).
    fn modulation(&self, minute: u64) -> f64 {
        const DAY: u64 = 24 * 60;
        const WEEK: u64 = 7 * DAY;
        let day_pos = (minute % DAY) as f64 / DAY as f64;
        // Peak at 14:00, trough at 02:00 (cosine centred on 14h).
        let phase = std::f64::consts::TAU * (day_pos - 14.0 / 24.0);
        let amp = (self.day_swing - 1.0) / (self.day_swing + 1.0);
        let daily = 1.0 + amp * phase.cos();
        let weekday = (minute % WEEK) / DAY; // 0..6, day 5/6 = weekend
        let weekend = if weekday >= 5 {
            self.weekend_factor
        } else {
            1.0
        };
        daily * weekend
    }

    /// The peak instantaneous rate, used for thinning.
    fn peak_rate(&self) -> f64 {
        let amp = (self.day_swing - 1.0) / (self.day_swing + 1.0);
        self.mean_rate * (1.0 + amp)
    }
}

impl ArrivalProcess for DiurnalArrivals {
    fn generate(&self, rng: &mut DetRng, start: u64, end: u64) -> Vec<u64> {
        // Thinning (Lewis-Shedler): draw from a homogeneous process at the
        // peak rate, accept with probability rate(t)/peak.
        let peak = self.peak_rate();
        let gap = Exponential::with_rate(peak);
        let mut out = Vec::new();
        let mut t = start as f64;
        loop {
            t += gap.sample(rng);
            if t >= end as f64 {
                return out;
            }
            let minute = t as u64;
            let accept = self.mean_rate * self.modulation(minute) / peak;
            if rng.next_f64() < accept {
                out.push(minute);
            }
        }
    }

    fn rate(&self) -> f64 {
        // Mean over the week: 5 weekdays at 1, 2 weekend days at the factor
        // (the daily cosine averages out).
        self.mean_rate * (5.0 + 2.0 * self.weekend_factor) / 7.0
    }

    fn cursor(&self, rng: DetRng, start: u64, end: u64) -> Box<dyn ArrivalCursor + Send> {
        Box::new(DiurnalCursor {
            process: *self,
            gap: Exponential::with_rate(self.peak_rate()),
            t: start as f64,
            end: end as f64,
            rng,
            done: false,
        })
    }
}

/// Incremental state of [`DiurnalArrivals::generate`]'s thinning loop.
struct DiurnalCursor {
    process: DiurnalArrivals,
    gap: Exponential,
    t: f64,
    end: f64,
    rng: DetRng,
    done: bool,
}

impl ArrivalCursor for DiurnalCursor {
    fn next_arrival(&mut self) -> Option<u64> {
        if self.done {
            return None;
        }
        let peak = self.process.peak_rate();
        loop {
            self.t += self.gap.sample(&mut self.rng);
            if self.t >= self.end {
                self.done = true;
                return None;
            }
            let minute = self.t as u64;
            let accept = self.process.mean_rate * self.process.modulation(minute) / peak;
            if self.rng.next_f64() < accept {
                return Some(minute);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_count_matches_rate() {
        let p = PoissonArrivals::new(0.5);
        let mut rng = DetRng::from_seed_u64(1);
        let arrivals = p.generate(&mut rng, 0, 100_000);
        let rate = arrivals.len() as f64 / 100_000.0;
        assert!((rate - 0.5).abs() < 0.02, "empirical rate {rate}");
    }

    #[test]
    fn arrivals_are_sorted_and_in_window() {
        let p = PoissonArrivals::new(1.0);
        let mut rng = DetRng::from_seed_u64(2);
        let arrivals = p.generate(&mut rng, 500, 1500);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        assert!(arrivals.iter().all(|&a| (500..1500).contains(&a)));
        assert!(!arrivals.is_empty());
    }

    #[test]
    fn burst_process_is_burstier_than_poisson() {
        // Same long-run rate; compare variance of per-window counts.
        let burst = BurstArrivals::new(0.01, 2.0, 2000.0, 200.0);
        let poisson = PoissonArrivals::new(burst.rate());
        let mut rng_a = DetRng::from_seed_u64(3);
        let mut rng_b = DetRng::from_seed_u64(4);
        let horizon = 500_000;
        let window = 1000u64;
        let var = |arrivals: &[u64]| {
            let mut counts = vec![0f64; (horizon / window) as usize];
            for &a in arrivals {
                counts[(a / window) as usize] += 1.0;
            }
            let mean = counts.iter().sum::<f64>() / counts.len() as f64;
            counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / counts.len() as f64
        };
        let vb = var(&burst.generate(&mut rng_a, 0, horizon));
        let vp = var(&poisson.generate(&mut rng_b, 0, horizon));
        assert!(
            vb > 3.0 * vp,
            "burst variance {vb} should dwarf poisson variance {vp}"
        );
    }

    #[test]
    fn burst_long_run_rate_matches_formula() {
        let b = BurstArrivals::new(0.1, 1.0, 900.0, 100.0);
        let mut rng = DetRng::from_seed_u64(5);
        let arrivals = b.generate(&mut rng, 0, 2_000_000);
        let emp = arrivals.len() as f64 / 2_000_000.0;
        assert!(
            (emp / b.rate() - 1.0).abs() < 0.1,
            "empirical {emp} vs theoretical {}",
            b.rate()
        );
    }

    #[test]
    fn empty_window_produces_nothing() {
        let p = PoissonArrivals::new(1.0);
        let mut rng = DetRng::from_seed_u64(6);
        assert!(p.generate(&mut rng, 100, 100).is_empty());
        let b = BurstArrivals::new(0.1, 1.0, 10.0, 10.0);
        assert!(b.generate(&mut rng, 100, 100).is_empty());
    }

    #[test]
    fn starting_in_burst_produces_immediate_arrivals() {
        let quiet = BurstArrivals::new(0.001, 2.0, 50_000.0, 2_000.0);
        let stormy = quiet.starting_in_burst();
        let mut rng_a = DetRng::from_seed_u64(9);
        let mut rng_b = DetRng::from_seed_u64(9);
        let lazy = quiet.generate(&mut rng_a, 0, 5_000);
        let eager = stormy.generate(&mut rng_b, 0, 5_000);
        assert!(
            eager.len() > 10 * lazy.len().max(1),
            "{} vs {}",
            eager.len(),
            lazy.len()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let p = BurstArrivals::new(0.05, 0.8, 300.0, 60.0);
        let a = p.generate(&mut DetRng::from_seed_u64(7), 0, 10_000);
        let b = p.generate(&mut DetRng::from_seed_u64(7), 0, 10_000);
        assert_eq!(a, b);
    }

    #[test]
    fn diurnal_day_night_and_weekend_cycles() {
        let d = DiurnalArrivals::new(1.0, 4.0, 0.3);
        let mut rng = DetRng::from_seed_u64(10);
        // Four weeks for stable statistics.
        let arrivals = d.generate(&mut rng, 0, 4 * 7 * 24 * 60);
        // Afternoon (13:00-15:00) busier than pre-dawn (01:00-03:00) on weekdays.
        let bucket = |h_lo: u64, h_hi: u64, weekend: bool| -> usize {
            arrivals
                .iter()
                .filter(|&&a| {
                    let day = (a % (7 * 1440)) / 1440;
                    let hour = (a % 1440) / 60;
                    (day >= 5) == weekend && (h_lo..h_hi).contains(&hour)
                })
                .count()
        };
        let afternoon = bucket(13, 15, false);
        let night = bucket(1, 3, false);
        assert!(
            afternoon > 2 * night,
            "afternoon {afternoon} should dwarf night {night}"
        );
        // Weekends are quieter than weekdays (per-day average).
        let weekday_total = arrivals
            .iter()
            .filter(|&&a| (a % (7 * 1440)) / 1440 < 5)
            .count() as f64
            / 5.0;
        let weekend_total = arrivals
            .iter()
            .filter(|&&a| (a % (7 * 1440)) / 1440 >= 5)
            .count() as f64
            / 2.0;
        assert!(weekend_total < 0.6 * weekday_total);
        // Long-run rate is close to the analytic value.
        let emp = arrivals.len() as f64 / (4.0 * 7.0 * 24.0 * 60.0);
        assert!(
            (emp / d.rate() - 1.0).abs() < 0.1,
            "rate {emp} vs {}",
            d.rate()
        );
    }

    fn drain(mut cursor: Box<dyn ArrivalCursor + Send>) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(a) = cursor.next_arrival() {
            out.push(a);
        }
        // Exhausted cursors stay exhausted.
        assert_eq!(cursor.next_arrival(), None);
        out
    }

    #[test]
    fn cursors_replay_generate_exactly() {
        let processes: Vec<Box<dyn ArrivalProcess>> = vec![
            Box::new(PoissonArrivals::new(0.7)),
            Box::new(BurstArrivals::new(0.01, 2.0, 2000.0, 200.0)),
            Box::new(BurstArrivals::new(0.05, 0.8, 300.0, 60.0).starting_in_burst()),
            Box::new(DiurnalArrivals::new(1.3, 4.0, 0.3)),
        ];
        for (pi, p) in processes.iter().enumerate() {
            for seed in [1u64, 42, 20_101_108] {
                for (start, end) in [(0u64, 20_000u64), (500, 1500), (100, 100)] {
                    let rng = DetRng::from_seed_u64(seed ^ pi as u64);
                    let batch = p.generate(&mut rng.clone(), start, end);
                    let lazy = drain(p.cursor(rng, start, end));
                    assert_eq!(batch, lazy, "process {pi} seed {seed} [{start},{end})");
                }
            }
        }
    }

    #[test]
    fn default_cursor_materializes_consistently() {
        // A process relying on the default cursor impl still matches.
        #[derive(Debug)]
        struct EveryK(u64);
        impl ArrivalProcess for EveryK {
            fn generate(&self, _rng: &mut DetRng, start: u64, end: u64) -> Vec<u64> {
                (start..end).step_by(self.0 as usize).collect()
            }
            fn rate(&self) -> f64 {
                1.0 / self.0 as f64
            }
        }
        let p = EveryK(7);
        let rng = DetRng::from_seed_u64(0);
        let batch = p.generate(&mut rng.clone(), 3, 100);
        assert_eq!(batch, drain(p.cursor(rng, 3, 100)));
    }

    #[test]
    #[should_panic(expected = "day swing")]
    fn diurnal_rejects_sub_unit_swing() {
        DiurnalArrivals::new(1.0, 0.5, 1.0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn poisson_rejects_zero_rate() {
        PoissonArrivals::new(0.0);
    }

    #[test]
    #[should_panic(expected = "at least the quiet rate")]
    fn burst_rejects_inverted_rates() {
        BurstArrivals::new(1.0, 0.5, 10.0, 10.0);
    }
}
