//! The trace model: the portable record format standing in for NetBatch's
//! proprietary job-execution traces.
//!
//! A [`TraceRecord`] carries exactly what the paper says its trace carries
//! ("the complete information of the jobs submitted to the site …, including
//! computing resource and memory requirements, submission time and
//! priority") plus the pool-affinity sets §2.3 describes. Real traces with
//! this schema can be swapped in through [`crate::io`].

use netbatch_cluster::ids::{JobId, PoolId, TaskId};
use netbatch_cluster::job::{JobSpec, PoolAffinity};
use netbatch_cluster::priority::Priority;
use netbatch_sim_engine::time::{SimDuration, SimTime};

/// One submitted job in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Submission minute (site-relative).
    pub submit_minute: u64,
    /// Pure compute requirement in reference-machine minutes.
    pub runtime_minutes: u64,
    /// Cores required.
    pub cores: u32,
    /// Memory required in MB.
    pub memory_mb: u64,
    /// Priority level (0 = low; ≥ 10 = the paper's high class).
    pub priority: u8,
    /// Eligible pools; empty means "any pool".
    pub affinity: Vec<u16>,
    /// Optional task group.
    pub task: Option<u32>,
}

impl TraceRecord {
    /// Converts the record into a [`JobSpec`] with the given id.
    pub fn to_spec(&self, id: JobId) -> JobSpec {
        let affinity = if self.affinity.is_empty() {
            PoolAffinity::Any
        } else {
            PoolAffinity::Subset(self.affinity.iter().copied().map(PoolId).collect())
        };
        let mut spec = JobSpec::new(
            id,
            SimTime::from_minutes(self.submit_minute),
            SimDuration::from_minutes(self.runtime_minutes),
        )
        .with_priority(Priority::new(self.priority))
        .with_cores(self.cores)
        .with_memory_mb(self.memory_mb)
        .with_affinity(affinity);
        if let Some(task) = self.task {
            spec = spec.with_task(TaskId(task));
        }
        spec
    }
}

/// A submission-time-ordered collection of trace records.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Builds a trace from records, sorting them by submission time
    /// (stable, so same-minute records keep their relative order).
    pub fn from_records(mut records: Vec<TraceRecord>) -> Self {
        records.sort_by_key(|r| r.submit_minute);
        Trace { records }
    }

    /// Appends a record.
    ///
    /// # Panics
    ///
    /// Panics if the record is earlier than the last one — traces are kept
    /// submission-ordered.
    pub fn push(&mut self, record: TraceRecord) {
        if let Some(last) = self.records.last() {
            assert!(
                record.submit_minute >= last.submit_minute,
                "trace records must be submission-ordered; use from_records to sort"
            );
        }
        self.records.push(record);
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the trace has no jobs.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records in submission order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Iterates records.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceRecord> {
        self.records.iter()
    }

    /// First submission minute, `None` if empty.
    pub fn start_minute(&self) -> Option<u64> {
        self.records.first().map(|r| r.submit_minute)
    }

    /// Last submission minute, `None` if empty.
    pub fn end_minute(&self) -> Option<u64> {
        self.records.last().map(|r| r.submit_minute)
    }

    /// Total offered compute demand in core-minutes — the numerator of the
    /// utilization estimate used to calibrate scenarios.
    pub fn total_core_minutes(&self) -> u64 {
        self.records
            .iter()
            .map(|r| r.runtime_minutes * u64::from(r.cores))
            .sum()
    }

    /// Materializes dense-id job specs, in submission order.
    pub fn to_specs(&self) -> Vec<JobSpec> {
        self.records
            .iter()
            .enumerate()
            .map(|(i, r)| r.to_spec(JobId(i as u64)))
            .collect()
    }

    /// Keeps only jobs submitted within `[from, to)` minutes — how the
    /// paper carves its one-week busy window (submission minutes 76 000 to
    /// 86 080) out of the year trace.
    pub fn window(&self, from: u64, to: u64) -> Trace {
        Trace {
            records: self
                .records
                .iter()
                .filter(|r| (from..to).contains(&r.submit_minute))
                .cloned()
                .collect(),
        }
    }

    /// Rebases submission times so the earliest job submits at minute 0.
    pub fn rebased(&self) -> Trace {
        let Some(start) = self.start_minute() else {
            return Trace::new();
        };
        Trace {
            records: self
                .records
                .iter()
                .map(|r| {
                    let mut r = r.clone();
                    r.submit_minute -= start;
                    r
                })
                .collect(),
        }
    }
}

impl IntoIterator for Trace {
    type Item = TraceRecord;
    type IntoIter = std::vec::IntoIter<TraceRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceRecord;
    type IntoIter = std::slice::Iter<'a, TraceRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl FromIterator<TraceRecord> for Trace {
    fn from_iter<T: IntoIterator<Item = TraceRecord>>(iter: T) -> Self {
        Trace::from_records(iter.into_iter().collect())
    }
}

impl Extend<TraceRecord> for Trace {
    fn extend<T: IntoIterator<Item = TraceRecord>>(&mut self, iter: T) {
        self.records.extend(iter);
        self.records.sort_by_key(|r| r.submit_minute);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(submit: u64, runtime: u64) -> TraceRecord {
        TraceRecord {
            submit_minute: submit,
            runtime_minutes: runtime,
            cores: 1,
            memory_mb: 1024,
            priority: 0,
            affinity: Vec::new(),
            task: None,
        }
    }

    #[test]
    fn from_records_sorts_by_submission() {
        let t = Trace::from_records(vec![rec(50, 1), rec(10, 1), rec(30, 1)]);
        let minutes: Vec<u64> = t.iter().map(|r| r.submit_minute).collect();
        assert_eq!(minutes, vec![10, 30, 50]);
        assert_eq!(t.start_minute(), Some(10));
        assert_eq!(t.end_minute(), Some(50));
    }

    #[test]
    fn push_enforces_order() {
        let mut t = Trace::new();
        t.push(rec(5, 1));
        t.push(rec(5, 2));
        t.push(rec(9, 1));
        assert_eq!(t.len(), 3);
    }

    #[test]
    #[should_panic(expected = "submission-ordered")]
    fn out_of_order_push_panics() {
        let mut t = Trace::new();
        t.push(rec(9, 1));
        t.push(rec(5, 1));
    }

    #[test]
    fn window_selects_half_open_range() {
        let t = Trace::from_records((0..100).map(|m| rec(m, 1)).collect());
        let w = t.window(10, 20);
        assert_eq!(w.len(), 10);
        assert_eq!(w.start_minute(), Some(10));
        assert_eq!(w.end_minute(), Some(19));
    }

    #[test]
    fn rebase_shifts_to_zero() {
        let t = Trace::from_records(vec![rec(100, 1), rec(150, 1)]);
        let r = t.rebased();
        assert_eq!(r.start_minute(), Some(0));
        assert_eq!(r.end_minute(), Some(50));
        assert!(Trace::new().rebased().is_empty());
    }

    #[test]
    fn demand_accounting() {
        let mut a = rec(0, 100);
        a.cores = 4;
        let t = Trace::from_records(vec![a, rec(1, 50)]);
        assert_eq!(t.total_core_minutes(), 450);
    }

    #[test]
    fn to_specs_assigns_dense_ids_and_converts_fields() {
        let mut r = rec(7, 42);
        r.priority = 10;
        r.affinity = vec![1, 3];
        r.task = Some(9);
        let t = Trace::from_records(vec![rec(3, 1), r]);
        let specs = t.to_specs();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].id, JobId(0));
        assert_eq!(specs[1].id, JobId(1));
        assert_eq!(specs[1].priority, Priority::HIGH);
        assert_eq!(specs[1].task, Some(TaskId(9)));
        assert!(specs[1].affinity.allows(PoolId(3)));
        assert!(!specs[1].affinity.allows(PoolId(0)));
        assert!(specs[0].affinity.allows(PoolId(0)));
    }
}
