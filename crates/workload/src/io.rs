//! Trace serialization: a small line-oriented CSV codec.
//!
//! Lets users export synthetic traces, or import real traces with the same
//! schema, without pulling a CSV dependency. Fields never contain commas, so
//! no quoting is needed; the affinity list uses `;` as its inner separator.

use std::error::Error;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

use crate::trace::{Trace, TraceRecord};

/// The header line written at the top of every trace file.
pub const CSV_HEADER: &str = "submit_minute,runtime_minutes,cores,memory_mb,priority,affinity,task";

/// Error produced when parsing a trace file.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number and a description.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o failure: {e}"),
            TraceIoError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for TraceIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Writes a trace as CSV. A `&mut` reference to any writer works
/// (`write_csv(&mut file, …)`).
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_csv<W: Write>(mut w: W, trace: &Trace) -> Result<(), TraceIoError> {
    writeln!(w, "{CSV_HEADER}")?;
    for r in trace {
        let affinity = r
            .affinity
            .iter()
            .map(u16::to_string)
            .collect::<Vec<_>>()
            .join(";");
        let task = r.task.map(|t| t.to_string()).unwrap_or_default();
        writeln!(
            w,
            "{},{},{},{},{},{},{}",
            r.submit_minute, r.runtime_minutes, r.cores, r.memory_mb, r.priority, affinity, task
        )?;
    }
    Ok(())
}

/// Reads a trace from CSV as produced by [`write_csv`]. The header line is
/// validated; records are re-sorted by submission minute.
///
/// # Errors
///
/// Returns [`TraceIoError::Parse`] on any malformed line and
/// [`TraceIoError::Io`] on read failures.
pub fn read_csv<R: Read>(r: R) -> Result<Trace, TraceIoError> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines().enumerate();
    match lines.next() {
        Some((_, Ok(header))) if header.trim() == CSV_HEADER => {}
        Some((_, Ok(other))) => {
            return Err(TraceIoError::Parse {
                line: 1,
                message: format!("unexpected header `{other}`"),
            })
        }
        Some((_, Err(e))) => return Err(e.into()),
        None => return Ok(Trace::new()),
    }
    let mut records = Vec::new();
    for (idx, line) in lines {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        records.push(parse_line(line).map_err(|message| TraceIoError::Parse {
            line: idx + 1,
            message,
        })?);
    }
    Ok(Trace::from_records(records))
}

fn parse_line(line: &str) -> Result<TraceRecord, String> {
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != 7 {
        return Err(format!("expected 7 fields, found {}", fields.len()));
    }
    fn num<T: std::str::FromStr>(s: &str, name: &str) -> Result<T, String> {
        s.parse().map_err(|_| format!("invalid {name} value `{s}`"))
    }
    let affinity = if fields[5].is_empty() {
        Vec::new()
    } else {
        fields[5]
            .split(';')
            .map(|s| num::<u16>(s, "affinity"))
            .collect::<Result<_, _>>()?
    };
    let task = if fields[6].is_empty() {
        None
    } else {
        Some(num::<u32>(fields[6], "task")?)
    };
    Ok(TraceRecord {
        submit_minute: num(fields[0], "submit_minute")?,
        runtime_minutes: num(fields[1], "runtime_minutes")?,
        cores: num(fields[2], "cores")?,
        memory_mb: num(fields[3], "memory_mb")?,
        priority: num(fields[4], "priority")?,
        affinity,
        task,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_trace() -> Trace {
        Trace::from_records(vec![
            TraceRecord {
                submit_minute: 0,
                runtime_minutes: 120,
                cores: 2,
                memory_mb: 4096,
                priority: 10,
                affinity: vec![1, 3, 5],
                task: Some(7),
            },
            TraceRecord {
                submit_minute: 5,
                runtime_minutes: 30,
                cores: 1,
                memory_mb: 1024,
                priority: 0,
                affinity: Vec::new(),
                task: None,
            },
        ])
    }

    #[test]
    fn round_trip_preserves_records() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_csv(&mut buf, &trace).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn csv_shape_is_stable() {
        let mut buf = Vec::new();
        write_csv(&mut buf, &sample_trace()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some(CSV_HEADER));
        assert_eq!(lines.next(), Some("0,120,2,4096,10,1;3;5,7"));
        assert_eq!(lines.next(), Some("5,30,1,1024,0,,"));
    }

    #[test]
    fn empty_input_is_empty_trace() {
        let t = read_csv(std::io::empty()).unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = format!("{CSV_HEADER}\n\n1,2,1,100,0,,\n\n");
        let t = read_csv(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn bad_header_is_reported() {
        let err = read_csv("nope\n".as_bytes()).unwrap_err();
        let TraceIoError::Parse { line, message } = err else {
            panic!("expected parse error")
        };
        assert_eq!(line, 1);
        assert!(message.contains("header"));
    }

    #[test]
    fn bad_field_reports_line_number() {
        let text = format!("{CSV_HEADER}\n1,2,1,100,0,,\nx,2,1,100,0,,\n");
        let err = read_csv(text.as_bytes()).unwrap_err();
        let TraceIoError::Parse { line, message } = err else {
            panic!("expected parse error")
        };
        assert_eq!(line, 3);
        assert!(message.contains("submit_minute"));
    }

    #[test]
    fn wrong_field_count_rejected() {
        let text = format!("{CSV_HEADER}\n1,2,3\n");
        let err = read_csv(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 7 fields"));
    }

    #[test]
    fn error_display_covers_io() {
        let e = TraceIoError::from(std::io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        assert!(Error::source(&e).is_some());
    }

    proptest! {
        /// Any generated trace survives a CSV round trip.
        #[test]
        fn prop_round_trip(records in proptest::collection::vec(
            (0u64..100_000, 1u64..10_000, 1u32..64, 128u64..1_000_000, 0u8..20,
             proptest::collection::vec(0u16..20, 0..4), proptest::option::of(0u32..1000)),
            0..50,
        )) {
            let trace = Trace::from_records(records.into_iter().map(
                |(submit_minute, runtime_minutes, cores, memory_mb, priority, affinity, task)| TraceRecord {
                    submit_minute, runtime_minutes, cores, memory_mb, priority, affinity, task,
                }).collect());
            let mut buf = Vec::new();
            write_csv(&mut buf, &trace).unwrap();
            let back = read_csv(buf.as_slice()).unwrap();
            prop_assert_eq!(back, trace);
        }
    }
}
