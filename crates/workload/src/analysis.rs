//! Offline trace analysis, independent of any simulation run.
//!
//! Mirrors the "trace-driven analysis" half of the paper: given a trace
//! (synthetic or imported), report its composition, arrival dynamics and
//! offered load — the sanity checks used to validate the synthetic
//! workloads against the published aggregates before simulating.

use netbatch_metrics::summary::SampleSet;
use netbatch_metrics::timeseries::TimeSeries;
use netbatch_sim_engine::time::{SimDuration, SimTime};

use crate::trace::Trace;

/// Summary statistics of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceAnalysis {
    /// Total jobs.
    pub jobs: usize,
    /// Jobs in the high class (priority ≥ 10).
    pub high_jobs: usize,
    /// Jobs carrying a pool-affinity restriction.
    pub restricted_jobs: usize,
    /// Mean runtime in minutes.
    pub mean_runtime: f64,
    /// Median runtime in minutes.
    pub median_runtime: f64,
    /// 99th-percentile runtime in minutes.
    pub p99_runtime: f64,
    /// Maximum runtime in minutes.
    pub max_runtime: f64,
    /// Mean cores per job.
    pub mean_cores: f64,
    /// Total offered demand in core-minutes.
    pub total_core_minutes: u64,
    /// Trace span (first to last submission), minutes.
    pub span_minutes: u64,
}

impl TraceAnalysis {
    /// Analyzes a trace.
    pub fn of(trace: &Trace) -> Self {
        let mut runtimes = SampleSet::new();
        let mut cores = 0u64;
        let mut high = 0usize;
        let mut restricted = 0usize;
        for r in trace {
            runtimes.push(r.runtime_minutes as f64);
            cores += u64::from(r.cores);
            if r.priority >= 10 {
                high += 1;
            }
            if !r.affinity.is_empty() {
                restricted += 1;
            }
        }
        let span = match (trace.start_minute(), trace.end_minute()) {
            (Some(s), Some(e)) => e - s,
            _ => 0,
        };
        TraceAnalysis {
            jobs: trace.len(),
            high_jobs: high,
            restricted_jobs: restricted,
            mean_runtime: runtimes.mean(),
            median_runtime: runtimes.median().unwrap_or(0.0),
            p99_runtime: runtimes.quantile(0.99).unwrap_or(0.0),
            max_runtime: runtimes.quantile(1.0).unwrap_or(0.0),
            mean_cores: if trace.is_empty() {
                0.0
            } else {
                cores as f64 / trace.len() as f64
            },
            total_core_minutes: trace.total_core_minutes(),
            span_minutes: span,
        }
    }

    /// Offered utilization against a site with `capacity_cores` cores:
    /// total demand spread over the trace span.
    pub fn offered_utilization(&self, capacity_cores: u32) -> f64 {
        if self.span_minutes == 0 || capacity_cores == 0 {
            return 0.0;
        }
        self.total_core_minutes as f64 / (self.span_minutes as f64 * f64::from(capacity_cores))
    }

    /// Fraction of jobs in the high class.
    pub fn high_fraction(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.high_jobs as f64 / self.jobs as f64
        }
    }
}

/// Per-interval submission counts — the arrival burstiness view.
///
/// Returns a [`TimeSeries`] with one point per `bucket`-minute interval
/// counting submissions in that interval (empty intervals included as
/// zeros, so burst spikes stand out against quiet floors).
pub fn arrival_series(trace: &Trace, bucket: SimDuration) -> TimeSeries {
    assert!(!bucket.is_zero(), "bucket width must be positive");
    let mut series = TimeSeries::new();
    let Some(end) = trace.end_minute() else {
        return series;
    };
    let width = bucket.as_minutes();
    let buckets = end / width + 1;
    let mut counts = vec![0f64; buckets as usize];
    for r in trace {
        counts[(r.submit_minute / width) as usize] += 1.0;
    }
    for (i, c) in counts.into_iter().enumerate() {
        series.push(SimTime::from_minutes(i as u64 * width), c);
    }
    series
}

/// Burstiness index: the coefficient of variation of per-interval arrival
/// counts. A Poisson stream at any rate has CV ≈ 1/√mean; MMPP bursts push
/// it far higher.
pub fn burstiness(trace: &Trace, bucket: SimDuration) -> f64 {
    let series = arrival_series(trace, bucket);
    if series.is_empty() {
        return 0.0;
    }
    let mean = series.mean();
    if mean == 0.0 {
        return 0.0;
    }
    let var = series
        .samples()
        .iter()
        .map(|&(_, v)| (v - mean).powi(2))
        .sum::<f64>()
        / series.len() as f64;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::ScenarioParams;
    use crate::trace::TraceRecord;

    fn rec(submit: u64, runtime: u64, cores: u32, priority: u8) -> TraceRecord {
        TraceRecord {
            submit_minute: submit,
            runtime_minutes: runtime,
            cores,
            memory_mb: 1024,
            priority,
            affinity: if priority >= 10 { vec![0, 1] } else { vec![] },
            task: None,
        }
    }

    #[test]
    fn analysis_computes_composition() {
        let t = Trace::from_records(vec![
            rec(0, 100, 1, 0),
            rec(10, 300, 2, 0),
            rec(20, 50, 1, 10),
        ]);
        let a = TraceAnalysis::of(&t);
        assert_eq!(a.jobs, 3);
        assert_eq!(a.high_jobs, 1);
        assert_eq!(a.restricted_jobs, 1);
        assert!((a.mean_runtime - 150.0).abs() < 1e-9);
        assert_eq!(a.median_runtime, 100.0);
        assert_eq!(a.max_runtime, 300.0);
        assert!((a.mean_cores - 4.0 / 3.0).abs() < 1e-9);
        assert_eq!(a.total_core_minutes, 100 + 600 + 50);
        assert_eq!(a.span_minutes, 20);
        assert!((a.high_fraction() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn offered_utilization_math() {
        let t = Trace::from_records(vec![rec(0, 100, 4, 0), rec(100, 100, 4, 0)]);
        let a = TraceAnalysis::of(&t);
        // 800 core-minutes over a 100-minute span on 16 cores = 50%.
        assert!((a.offered_utilization(16) - 0.5).abs() < 1e-9);
        assert_eq!(a.offered_utilization(0), 0.0);
    }

    #[test]
    fn empty_trace_analysis() {
        let a = TraceAnalysis::of(&Trace::new());
        assert_eq!(a.jobs, 0);
        assert_eq!(a.mean_runtime, 0.0);
        assert_eq!(a.high_fraction(), 0.0);
        assert_eq!(a.offered_utilization(100), 0.0);
    }

    #[test]
    fn arrival_series_includes_empty_buckets() {
        let t = Trace::from_records(vec![rec(0, 1, 1, 0), rec(250, 1, 1, 0)]);
        let s = arrival_series(&t, SimDuration::from_minutes(100));
        let values: Vec<f64> = s.samples().iter().map(|&(_, v)| v).collect();
        assert_eq!(values, vec![1.0, 0.0, 1.0]);
    }

    #[test]
    fn synthetic_high_streams_are_burstier_than_background() {
        let trace = ScenarioParams::normal_week(0.05).generate_trace();
        let (mut low, mut high) = (Vec::new(), Vec::new());
        for r in &trace {
            if r.priority >= 10 {
                high.push(r.clone());
            } else {
                low.push(r.clone());
            }
        }
        let b_low = burstiness(&Trace::from_records(low), SimDuration::from_minutes(60));
        let b_high = burstiness(&Trace::from_records(high), SimDuration::from_minutes(60));
        assert!(
            b_high > 1.5 * b_low,
            "high-priority CV {b_high:.2} should exceed background CV {b_low:.2}"
        );
    }

    #[test]
    fn burstiness_of_empty_trace_is_zero() {
        assert_eq!(burstiness(&Trace::new(), SimDuration::HOUR), 0.0);
    }
}
