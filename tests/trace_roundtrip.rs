//! Trace persistence integration: generated traces survive CSV round trips
//! and the re-read trace drives the simulator to identical results — the
//! guarantee that lets users swap in real traces with the same schema.

use netbatch::core::experiment::Experiment;
use netbatch::core::policy::{InitialKind, StrategyKind};
use netbatch::core::simulator::SimConfig;
use netbatch::workload::io::{read_csv, write_csv};
use netbatch::workload::scenarios::ScenarioParams;

#[test]
fn csv_round_trip_preserves_simulation_results() {
    let params = ScenarioParams::normal_week(0.01);
    let site = params.build_site();
    let trace = params.generate_trace();

    let mut buf = Vec::new();
    write_csv(&mut buf, &trace).expect("serialize");
    let reread = read_csv(buf.as_slice()).expect("parse");
    assert_eq!(reread, trace);

    let config = SimConfig::new(InitialKind::RoundRobin, StrategyKind::ResSusWaitUtil);
    let a = Experiment::new(site.clone(), trace, config.clone()).run();
    let b = Experiment::new(site, reread, config).run();
    assert_eq!(a.avg_ct_all.to_bits(), b.avg_ct_all.to_bits());
    assert_eq!(a.suspend_rate.to_bits(), b.suspend_rate.to_bits());
    assert_eq!(a.counters, b.counters);
}

#[test]
fn windowing_matches_the_papers_busy_week_methodology() {
    // The paper carves jobs submitted between minutes 76 000 and 86 080
    // out of the year trace. Reproduce the carve on a synthetic year and
    // check the window is a self-contained runnable trace.
    let params = ScenarioParams::year(0.01);
    let year = params.generate_trace();
    let window = year.window(76_000, 86_080).rebased();
    assert!(window.len() > 50);
    assert_eq!(window.start_minute(), Some(0));
    assert!(window.end_minute().unwrap() < 10_080);

    let result = Experiment::new(
        params.build_site(),
        window,
        SimConfig::new(InitialKind::RoundRobin, StrategyKind::NoRes),
    )
    .run();
    assert_eq!(result.counters.completed, result.total_jobs);
}

#[test]
fn trace_files_on_disk_work() {
    let params = ScenarioParams::normal_week(0.005);
    let trace = params.generate_trace();
    let dir = std::env::temp_dir().join("netbatch-trace-test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("trace.csv");
    let file = std::fs::File::create(&path).expect("create");
    write_csv(file, &trace).expect("write");
    let back = read_csv(std::fs::File::open(&path).expect("open")).expect("read");
    assert_eq!(back, trace);
    std::fs::remove_file(&path).ok();
}
