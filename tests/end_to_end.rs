//! End-to-end integration tests: full scenario → simulator → metrics,
//! across every policy combination.

use netbatch::core::experiment::Experiment;
use netbatch::core::policy::{InitialKind, StrategyKind};
use netbatch::core::simulator::SimConfig;
use netbatch::workload::scenarios::ScenarioParams;

const TEST_SCALE: f64 = 0.02;

fn all_strategies() -> [StrategyKind; 6] {
    [
        StrategyKind::NoRes,
        StrategyKind::ResSusUtil,
        StrategyKind::ResSusRand,
        StrategyKind::ResSusWaitUtil,
        StrategyKind::ResSusWaitRand,
        StrategyKind::ResSusQueue,
    ]
}

#[test]
fn every_policy_combination_completes_the_whole_trace() {
    let params = ScenarioParams::normal_week(TEST_SCALE);
    let site = params.build_site();
    let trace = params.generate_trace();
    for initial in [InitialKind::RoundRobin, InitialKind::UtilizationBased] {
        for strategy in all_strategies() {
            let r = Experiment::new(
                site.clone(),
                trace.clone(),
                SimConfig::new(initial, strategy),
            )
            .run();
            assert_eq!(
                r.counters.completed, r.total_jobs,
                "{initial:?}/{strategy:?} left jobs unfinished"
            );
            assert_eq!(
                r.counters.unrunnable, 0,
                "generated jobs must all be runnable"
            );
        }
    }
}

#[test]
fn experiments_are_deterministic() {
    let params = ScenarioParams::normal_week(TEST_SCALE);
    let make = || {
        Experiment::new(
            params.build_site(),
            params.generate_trace(),
            SimConfig::new(InitialKind::RoundRobin, StrategyKind::ResSusWaitRand),
        )
        .run()
    };
    let a = make();
    let b = make();
    assert_eq!(a.suspend_rate, b.suspend_rate);
    assert_eq!(a.avg_ct_all, b.avg_ct_all);
    assert_eq!(a.avg_ct_suspended, b.avg_ct_suspended);
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.end_time, b.end_time);
}

#[test]
fn different_seeds_produce_different_randomized_runs() {
    let params = ScenarioParams::normal_week(TEST_SCALE);
    let site = params.build_site();
    let trace = params.generate_trace();
    let mut cfg_a = SimConfig::new(InitialKind::RoundRobin, StrategyKind::ResSusRand);
    cfg_a.seed = 1;
    let mut cfg_b = cfg_a.clone();
    cfg_b.seed = 2;
    let a = Experiment::new(site.clone(), trace.clone(), cfg_a).run();
    let b = Experiment::new(site, trace, cfg_b).run();
    // Different policy seeds must not change the workload, only decisions.
    assert_eq!(a.total_jobs, b.total_jobs);
    assert_ne!(
        (
            a.counters.restarts_from_suspend,
            a.avg_ct_suspended.to_bits()
        ),
        (
            b.counters.restarts_from_suspend,
            b.avg_ct_suspended.to_bits()
        ),
        "different seeds should steer random rescheduling differently"
    );
}

#[test]
fn waste_components_sum_to_avg_wct() {
    let params = ScenarioParams::normal_week(TEST_SCALE);
    let r = Experiment::new(
        params.build_site(),
        params.generate_trace(),
        SimConfig::new(InitialKind::RoundRobin, StrategyKind::ResSusWaitUtil),
    )
    .run();
    let parts = r.waste.avg_wait() + r.waste.avg_suspend() + r.waste.avg_resched();
    assert!((parts - r.avg_wct()).abs() < 1e-9);
}

#[test]
fn suspension_population_is_consistent() {
    let params = ScenarioParams::normal_week(TEST_SCALE);
    let r = Experiment::new(
        params.build_site(),
        params.generate_trace(),
        SimConfig::new(InitialKind::RoundRobin, StrategyKind::NoRes),
    )
    .run();
    // Suspend rate × jobs == suspension-time sample count.
    let expected = (r.suspend_rate * r.total_jobs as f64).round() as u64;
    assert_eq!(r.suspended_jobs(), expected);
    // Mean of the samples == AvgST.
    if r.suspended_jobs() > 0 {
        let mean = r.suspension_times.iter().sum::<f64>() / r.suspension_times.len() as f64;
        assert!((mean - r.avg_st).abs() < 1e-9);
    }
}

#[test]
fn sampling_does_not_change_outcomes() {
    let params = ScenarioParams::normal_week(TEST_SCALE);
    let site = params.build_site();
    let trace = params.generate_trace();
    let plain = Experiment::new(
        site.clone(),
        trace.clone(),
        SimConfig::new(InitialKind::RoundRobin, StrategyKind::ResSusUtil),
    )
    .run();
    let sampled = Experiment::new(
        site,
        trace,
        SimConfig::new(InitialKind::RoundRobin, StrategyKind::ResSusUtil).with_sampling(),
    )
    .run();
    assert_eq!(plain.avg_ct_all, sampled.avg_ct_all);
    assert_eq!(plain.suspend_rate, sampled.suspend_rate);
    assert!(!sampled.utilization_series.is_empty());
    assert!(plain.utilization_series.is_empty());
}

#[test]
fn restart_overhead_only_hurts() {
    let params = ScenarioParams::normal_week(TEST_SCALE);
    let site = params.build_site();
    let trace = params.generate_trace();
    let free = Experiment::new(
        site.clone(),
        trace.clone(),
        SimConfig::new(InitialKind::RoundRobin, StrategyKind::ResSusUtil),
    )
    .run();
    let mut costly_cfg = SimConfig::new(InitialKind::RoundRobin, StrategyKind::ResSusUtil);
    costly_cfg.restart_overhead = netbatch::sim_engine::time::SimDuration::from_minutes(120);
    let costly = Experiment::new(site, trace, costly_cfg).run();
    assert!(
        costly.waste.avg_resched() >= free.waste.avg_resched(),
        "per-restart overhead must not reduce rescheduling waste"
    );
}

#[test]
fn high_load_is_strictly_worse_for_the_baseline() {
    let params = ScenarioParams::normal_week(TEST_SCALE);
    let trace = params.generate_trace();
    let normal = Experiment::new(
        params.build_site(),
        trace.clone(),
        SimConfig::new(InitialKind::RoundRobin, StrategyKind::NoRes),
    )
    .run();
    let high = Experiment::new(
        params.build_site().halved(),
        trace,
        SimConfig::new(InitialKind::RoundRobin, StrategyKind::NoRes),
    )
    .run();
    assert!(high.avg_ct_all > normal.avg_ct_all);
    assert!(high.avg_wct() > normal.avg_wct());
}
