//! Stable-schema guard: every label that escapes into traces, metrics,
//! span JSONL or folded profiles is part of the tool-facing contract —
//! downstream queries (`netbatch trace --cause`), dashboards and golden
//! fixtures key on them. This suite pins the complete label registry:
//! adding a kind extends a pinned list (appending is fine), but renaming
//! or reusing a label for a different meaning fails here first.

use std::collections::BTreeSet;

use netbatch::cluster::ids::{JobId, MachineId, PoolId};
use netbatch::core::observer::{AuditTrigger, AuditVerdict, ObsEvent, PhaseTag, ReschedKind};
use netbatch::core::provenance::{Cause, KERNEL_EV_KINDS, SPAN_PHASES};
use netbatch::sim_engine::time::{SimDuration, SimTime};

/// One instance of every `ObsEvent` kind (every `Reschedule` mechanism
/// counts as its own kind: each renders under its own label). Adding an
/// `ObsEvent` variant breaks this function's exhaustiveness check below,
/// forcing the new label into the pinned registry.
fn every_event() -> Vec<ObsEvent> {
    let (job, pool, machine) = (JobId(1), PoolId(2), MachineId(3));
    let (t, d) = (SimTime::from_minutes(5), SimDuration::from_minutes(7));
    let reschedule = |kind| ObsEvent::Reschedule {
        job,
        kind,
        from_pool: pool,
        machine: Some(machine),
        from_phase: PhaseTag::Running,
        to: Some(pool),
        discarded: d,
    };
    let events = vec![
        ObsEvent::Kernel { kind: "submit" },
        ObsEvent::BatchStart { pool },
        ObsEvent::Submit { job },
        ObsEvent::PoolChosen { job, pool },
        ObsEvent::Unrunnable { job },
        ObsEvent::Dispatch {
            job,
            pool,
            machine,
            wall: d,
            from_queue: true,
        },
        ObsEvent::Enqueue { job, pool },
        ObsEvent::Suspend { job, pool, machine },
        ObsEvent::Resume { job, pool, machine },
        reschedule(ReschedKind::RestartFromSuspend),
        reschedule(ReschedKind::RestartFromWait),
        reschedule(ReschedKind::Migrate),
        reschedule(ReschedKind::FailureEvict),
        reschedule(ReschedKind::Evacuation),
        ObsEvent::WaitTimeout { job, pool },
        ObsEvent::DuplicateLaunched {
            original: job,
            clone: JobId(9),
            target: pool,
        },
        ObsEvent::ProxyFinish {
            job,
            from_phase: PhaseTag::Suspended,
            pool: Some(pool),
            machine: Some(machine),
        },
        ObsEvent::Complete { job, pool, machine },
        ObsEvent::MachineDown { pool, machine },
        ObsEvent::MachineUp { pool, machine },
        ObsEvent::MachineDraining {
            pool,
            machine,
            deadline: Some(t),
        },
        ObsEvent::MachineUndrained { pool, machine },
        ObsEvent::RetryScheduled {
            job,
            attempt: 1,
            resume_at: t,
        },
        ObsEvent::PoolBlacklisted { pool, until: t },
        ObsEvent::PolicyAudit {
            job,
            pool,
            trigger: AuditTrigger::Suspend,
            verdict: AuditVerdict::Restart,
            target: Some(pool),
            candidates: 4,
            cur_util_milli: 900,
            tgt_util_milli: 300,
            cur_queue: 2,
            tgt_queue: 0,
        },
        ObsEvent::EvacAudit {
            job,
            pool,
            machine,
            window: 0,
            remaining: d,
            deadline: t,
        },
        ObsEvent::FaultAudit {
            pool,
            machine,
            outage: 0,
            blacklisted_until: Some(t),
        },
    ];
    // Exhaustiveness: one entry per variant plus one per extra
    // ReschedKind. A new variant (or mechanism) must be added above AND
    // to the pinned registry, or this arithmetic breaks.
    for ev in &events {
        match ev {
            ObsEvent::Kernel { .. }
            | ObsEvent::BatchStart { .. }
            | ObsEvent::Submit { .. }
            | ObsEvent::PoolChosen { .. }
            | ObsEvent::Unrunnable { .. }
            | ObsEvent::Dispatch { .. }
            | ObsEvent::Enqueue { .. }
            | ObsEvent::Suspend { .. }
            | ObsEvent::Resume { .. }
            | ObsEvent::Reschedule { .. }
            | ObsEvent::WaitTimeout { .. }
            | ObsEvent::DuplicateLaunched { .. }
            | ObsEvent::ProxyFinish { .. }
            | ObsEvent::Complete { .. }
            | ObsEvent::MachineDown { .. }
            | ObsEvent::MachineUp { .. }
            | ObsEvent::MachineDraining { .. }
            | ObsEvent::MachineUndrained { .. }
            | ObsEvent::RetryScheduled { .. }
            | ObsEvent::PoolBlacklisted { .. }
            | ObsEvent::PolicyAudit { .. }
            | ObsEvent::EvacAudit { .. }
            | ObsEvent::FaultAudit { .. }
            | ObsEvent::Sample => {}
        }
    }
    events
}

/// The complete, append-only event-label registry. Labels here are
/// *retired, never reused*: if a kind goes away its label must not be
/// given a new meaning later — queries against archived traces would
/// silently change meaning.
const PINNED_EVENT_LABELS: [&str; 28] = [
    "kernel",
    "batch",
    "submit",
    "pool_chosen",
    "unrunnable",
    "dispatch",
    "enqueue",
    "suspend",
    "resume",
    "restart_from_suspend",
    "restart_from_wait",
    "migrate",
    "failure_evict",
    "evacuation",
    "wait_timeout",
    "duplicate",
    "proxy_finish",
    "complete",
    "machine_down",
    "machine_up",
    "machine_draining",
    "machine_undrained",
    "retry_backoff",
    "blacklist",
    "sample",
    "policy_audit",
    "evac_audit",
    "fault_audit",
];

/// Pinned span-phase registry (`netbatch trace` groups and Perfetto
/// track names key on these).
const PINNED_SPAN_PHASES: [&str; 5] =
    ["queue_wait", "running", "suspended", "backoff", "migrating"];

/// Pinned cause-type registry (the `"type"` tag in span JSONL causes and
/// the `trace --cause` query vocabulary).
const PINNED_CAUSE_LABELS: [&str; 9] = [
    "submitted",
    "dispatched",
    "preempted",
    "resumed",
    "policy",
    "fault",
    "evacuation",
    "retry",
    "duplicate_race",
];

fn every_cause() -> Vec<Cause> {
    vec![
        Cause::Submitted,
        Cause::Dispatched { from_queue: true },
        Cause::Preempted,
        Cause::Resumed,
        Cause::Policy {
            trigger: AuditTrigger::WaitTimeout,
            verdict: AuditVerdict::Migrate,
            target: Some(PoolId(1)),
            candidates: 2,
            cur_util_milli: 800,
            tgt_util_milli: 400,
            cur_queue: 3,
            tgt_queue: 1,
        },
        Cause::Fault {
            outage: 0,
            blacklisted_until: None,
        },
        Cause::Evacuation {
            window: 0,
            deadline: SimTime::from_minutes(9),
        },
        Cause::Retry { attempt: 2 },
        Cause::DuplicateRace,
    ]
}

fn assert_unique(labels: &[&str], what: &str) {
    let set: BTreeSet<&str> = labels.iter().copied().collect();
    assert_eq!(set.len(), labels.len(), "duplicate {what} label");
}

#[test]
fn event_labels_are_unique_and_pinned() {
    let labels: Vec<&str> = every_event().iter().map(ObsEvent::label).collect();
    // Sample carries no payload and is in the exhaustive match but not
    // the constructed list; account for it explicitly.
    let mut labels = labels;
    labels.push(ObsEvent::Sample.label());
    assert_unique(&labels, "event");
    let current: BTreeSet<&str> = labels.iter().copied().collect();
    let pinned: BTreeSet<&str> = PINNED_EVENT_LABELS.iter().copied().collect();
    assert_eq!(
        current, pinned,
        "event labels drifted from the pinned registry — append new kinds, never rename or reuse"
    );
}

#[test]
fn span_phases_are_unique_pinned_and_disjoint_from_event_labels() {
    assert_unique(&SPAN_PHASES, "span phase");
    assert_eq!(SPAN_PHASES, PINNED_SPAN_PHASES);
    for phase in SPAN_PHASES {
        assert!(
            !PINNED_EVENT_LABELS.contains(&phase),
            "span phase {phase:?} reuses an event label"
        );
    }
}

#[test]
fn cause_labels_are_unique_and_pinned() {
    let labels: Vec<&str> = every_cause().iter().map(Cause::label).collect();
    assert_unique(&labels, "cause");
    let current: BTreeSet<&str> = labels.iter().copied().collect();
    let pinned: BTreeSet<&str> = PINNED_CAUSE_LABELS.iter().copied().collect();
    assert_eq!(
        current, pinned,
        "cause labels drifted from the pinned registry — append new kinds, never rename or reuse"
    );
}

#[test]
fn audit_and_phase_vocabularies_are_unique() {
    let triggers = [
        AuditTrigger::Suspend.label(),
        AuditTrigger::WaitTimeout.label(),
    ];
    assert_unique(&triggers, "audit trigger");
    let verdicts = [
        AuditVerdict::Stay.label(),
        AuditVerdict::Restart.label(),
        AuditVerdict::Migrate.label(),
        AuditVerdict::Duplicate.label(),
    ];
    assert_unique(&verdicts, "audit verdict");
    let phases = [
        PhaseTag::AtVpm.label(),
        PhaseTag::Waiting.label(),
        PhaseTag::Running.label(),
        PhaseTag::Suspended.label(),
    ];
    assert_unique(&phases, "phase tag");
    assert_unique(&KERNEL_EV_KINDS, "kernel event kind");
}
