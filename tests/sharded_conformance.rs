//! Differential conformance suite: the sharded kernel must be
//! **observationally equal** to the serial reference executor on random
//! configurations — not just on the committed golden cells.
//!
//! Each case draws a random workload, a random `SimConfig` across all
//! nine strategies, both initial schedulers, staleness/overhead/restart
//! knobs, an optional random fault model with the hardened resilience
//! policy toggled freely, and a random shard count. The serial and the
//! sharded run must then agree on the full JSONL event trace (byte for
//! byte), the run counters, and every derived paper metric — all while
//! the `InvariantChecker` rides along on both backends.

use netbatch::cluster::ids::PoolId;
use netbatch::cluster::pool::PoolConfig;
use netbatch::core::experiment::ExperimentResult;
use netbatch::core::faults::{FaultModel, ResiliencePolicy};
use netbatch::core::observer::TraceRecorder;
use netbatch::core::policy::{InitialKind, StrategyKind};
use netbatch::core::provenance::SpanRecorder;
use netbatch::core::simulator::{Backend, SimConfig, Simulator};
use netbatch::sim_engine::time::SimDuration;
use netbatch::workload::scenarios::SiteSpec;
use netbatch::workload::trace::{Trace, TraceRecord};
use proptest::prelude::*;

fn small_site(pools: u16, machines: u32, cores: u32) -> SiteSpec {
    SiteSpec {
        pools: (0..pools)
            .map(|p| PoolConfig::uniform(PoolId(p), machines, cores, 8192))
            .collect(),
    }
}

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (
        0u64..2000,                                // submit minute
        1u64..400,                                 // runtime
        1u32..3,                                   // cores
        prop::sample::select(vec![0u8, 0, 0, 10]), // mostly low, some high
        prop::bool::ANY,                           // restricted affinity?
    )
        .prop_map(
            |(submit, runtime, cores, priority, restricted)| TraceRecord {
                submit_minute: submit,
                runtime_minutes: runtime,
                cores,
                memory_mb: 512,
                priority,
                affinity: if restricted && priority >= 10 {
                    vec![0]
                } else {
                    vec![]
                },
                task: None,
            },
        )
}

/// All nine strategies of the paper: the conformance contract covers the
/// full policy surface, not just the fast-classifiable NoRes cell.
fn arb_strategy() -> impl Strategy<Value = StrategyKind> {
    prop::sample::select(vec![
        StrategyKind::NoRes,
        StrategyKind::ResSusUtil,
        StrategyKind::ResSusRand,
        StrategyKind::ResSusWaitUtil,
        StrategyKind::ResSusWaitRand,
        StrategyKind::ResSusQueue,
        StrategyKind::ResSusWaitSmart,
        StrategyKind::MigrateSusUtil,
        StrategyKind::DupSusUtil,
    ])
}

fn arb_initial() -> impl Strategy<Value = InitialKind> {
    prop::sample::select(vec![InitialKind::RoundRobin, InitialKind::UtilizationBased])
}

/// An optional stochastic fault model: machine churn with occasional
/// whole-pool outages and flaky repeat offenders.
fn arb_fault_model() -> impl Strategy<Value = Option<FaultModel>> {
    prop::option::of((4u64..72, 1u64..12, 0u32..3, 0u64..8).prop_map(
        |(mtbf, mttr, outages, flaky_pct)| {
            FaultModel::new(
                SimDuration::from_hours(mtbf),
                SimDuration::from_hours(mttr),
                SimDuration::from_days(3),
            )
            .with_pool_outages(outages, SimDuration::from_hours(mttr))
            .with_flaky(flaky_pct as f64 / 100.0, 8)
        },
    ))
}

fn arb_config() -> impl Strategy<Value = SimConfig> {
    (
        arb_initial(),
        arb_strategy(),
        0u64..1000,                                  // seed
        0u64..30,                                    // restart overhead (minutes)
        prop::sample::select(vec![0u64, 0, 15, 60]), // view staleness
        prop::option::of(1u32..4),                   // max restarts
        arb_fault_model(),
        prop::bool::ANY, // hardened resilience?
    )
        .prop_map(
            |(initial, strategy, seed, overhead, staleness, max_restarts, faults, hardened)| {
                let mut config = SimConfig::new(initial, strategy);
                config.seed = seed;
                config.restart_overhead = SimDuration::from_minutes(overhead);
                config.view_staleness = SimDuration::from_minutes(staleness);
                config.max_restarts = max_restarts;
                config.fault_model = faults;
                config.resilience = if hardened {
                    ResiliencePolicy::hardened()
                } else {
                    ResiliencePolicy::disabled()
                };
                // Both runs carry the full observer stack: the invariant
                // checker must hold on either backend.
                config.check_invariants = true;
                config
            },
        )
}

/// Runs one cell and returns everything observable about it: the JSONL
/// trace stream and the derived paper metrics (which carry the raw run
/// counters and end time).
fn run_cell(
    site: &SiteSpec,
    records: &[TraceRecord],
    mut config: SimConfig,
    backend: Backend,
) -> (String, ExperimentResult) {
    let (initial, strategy) = (config.initial, config.strategy);
    config.backend = backend;
    let trace = Trace::from_records(records.to_vec());
    let mut sim = Simulator::new(site, trace.to_specs(), config);
    sim.attach_observer(Box::new(TraceRecorder::in_memory()));
    let output = sim.run_to_completion();
    let jsonl = output
        .observer::<TraceRecorder>()
        .expect("recorder attached")
        .lines()
        .to_string();
    let result = ExperimentResult::from_output(initial, strategy, output);
    (jsonl, result)
}

/// Asserts two JSONL streams match, reporting the first diverging line.
fn assert_same_trace(serial: &str, sharded: &str, shards: usize) -> Result<(), TestCaseError> {
    if serial == sharded {
        return Ok(());
    }
    for (i, (a, b)) in serial.lines().zip(sharded.lines()).enumerate() {
        prop_assert_eq!(
            a,
            b,
            "sharded x{} trace diverges from serial at line {}",
            shards,
            i + 1
        );
    }
    prop_assert_eq!(
        serial.lines().count(),
        sharded.lines().count(),
        "sharded x{} trace length diverges",
        shards
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any configuration the sharded backend is a drop-in replacement:
    /// same events in the same order, same counters, same metrics.
    #[test]
    fn prop_sharded_equals_serial(
        records in prop::collection::vec(arb_record(), 1..50),
        config in arb_config(),
        shards in 1usize..6,
    ) {
        let site = small_site(3, 2, 2);
        let (trace_a, res_a) = run_cell(&site, &records, config.clone(), Backend::Serial);
        let (trace_b, res_b) = run_cell(&site, &records, config, Backend::Sharded { shards });

        assert_same_trace(&trace_a, &trace_b, shards)?;
        prop_assert_eq!(res_a.counters, res_b.counters, "run counters diverge");
        prop_assert_eq!(res_a.end_time, res_b.end_time, "end time diverges");

        // Derived paper metrics must agree to the exact bit — they are
        // pure functions of the run, so any drift is a kernel bug, not
        // floating-point noise.
        prop_assert_eq!(res_a.total_jobs, res_b.total_jobs);
        prop_assert_eq!(res_a.suspend_rate.to_bits(), res_b.suspend_rate.to_bits());
        prop_assert_eq!(res_a.avg_ct_suspended.to_bits(), res_b.avg_ct_suspended.to_bits());
        prop_assert_eq!(res_a.avg_ct_all.to_bits(), res_b.avg_ct_all.to_bits());
        prop_assert_eq!(res_a.avg_st.to_bits(), res_b.avg_st.to_bits());
        prop_assert_eq!(res_a.avg_wait_all.to_bits(), res_b.avg_wait_all.to_bits());
        prop_assert_eq!(res_a.avg_wct().to_bits(), res_b.avg_wct().to_bits());
        let times_a: Vec<u64> = res_a.suspension_times.iter().map(|t| t.to_bits()).collect();
        let times_b: Vec<u64> = res_b.suspension_times.iter().map(|t| t.to_bits()).collect();
        prop_assert_eq!(times_a, times_b, "suspension time distributions diverge");
    }
}

/// Runs one cell with the [`SpanRecorder`] attached (exercising the
/// sharded replay seam — `on_replayed_event`/`on_settle` — when the
/// backend shards) and returns the rendered spans JSONL.
fn run_spans(
    site: &SiteSpec,
    records: &[TraceRecord],
    mut config: SimConfig,
    backend: Backend,
    reference_queue: bool,
) -> String {
    config.backend = backend;
    config.spans = true;
    config.use_reference_queue = reference_queue;
    let trace = Trace::from_records(records.to_vec());
    let output = Simulator::new(site, trace.to_specs(), config).run_to_completion();
    output
        .observer::<SpanRecorder>()
        .expect("span recorder attached")
        .render_jsonl()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Span trees (segments, causes, and the decision audit) must come
    /// out byte-identical from the serial executor and the sharded kernel
    /// at shards {1, 2, 4, 20}, on both event-queue backends — the
    /// provenance layer's replayed-event seam must not reorder, drop or
    /// re-cause a single segment.
    #[test]
    fn prop_span_trees_identical_across_backends(
        records in prop::collection::vec(arb_record(), 1..50),
        config in arb_config(),
    ) {
        let site = small_site(3, 2, 2);
        let reference = run_spans(&site, &records, config.clone(), Backend::Serial, false);
        let heap = run_spans(&site, &records, config.clone(), Backend::Serial, true);
        assert_same_trace(&reference, &heap, 0)?;
        for &shards in &[1usize, 2, 4, 20] {
            for &ref_queue in &[false, true] {
                let got = run_spans(
                    &site,
                    &records,
                    config.clone(),
                    Backend::Sharded { shards },
                    ref_queue,
                );
                assert_same_trace(&reference, &got, shards)?;
                prop_assert_eq!(
                    &reference,
                    &got,
                    "span JSONL diverges at {} shards (reference queue: {})",
                    shards,
                    ref_queue
                );
            }
        }
    }
}
