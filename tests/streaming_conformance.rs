//! Conformance suite for the streaming backend (differential testing,
//! same discipline as `sharded_conformance`):
//!
//! * streaming runs are **shard-count independent**: the golden JSONL
//!   trace is byte-identical across 1/2/4/20 workers and across both
//!   event-queue backends (the streaming canonical order is defined
//!   per-pool, so partitioning cannot reorder it);
//! * streaming equals a **materialized** serial run job-for-job and
//!   counter-for-counter when sampling is off (per-pool event sequences
//!   coincide; only cross-pool interleaving within a minute differs,
//!   which no per-job record or counter can see);
//! * epoch **pipelining** is unobservable: with pipelining force-disabled
//!   the deterministic outputs are identical;
//! * a year-long horizon streams in bounded state end to end.

use netbatch::core::observer::TraceRecorder;
use netbatch::core::policy::{InitialKind, StrategyKind};
use netbatch::core::simulator::{Backend, SimConfig, SimOutput, Simulator};
use netbatch::workload::scenarios::PerPoolParams;

fn base_config(backend: Backend) -> SimConfig {
    let mut config = SimConfig::new(InitialKind::RoundRobin, StrategyKind::NoRes);
    config.backend = backend;
    config
}

/// A small pool-major workload with enough pressure (bursty pinned high
/// streams) to exercise suspensions, resumes and queueing on every pool.
fn params() -> PerPoolParams {
    PerPoolParams::new(8, 0.3, 2_000).with_high_bursts()
}

/// Runs one streaming cell with a trace recorder attached and returns
/// the JSONL stream plus the full output.
fn run_streaming_traced(p: &PerPoolParams, config: SimConfig) -> (String, SimOutput) {
    let site = p.build_site();
    let workload = p.build_workload();
    let mut sim = Simulator::new(&site, Vec::new(), config);
    sim.attach_observer(Box::new(TraceRecorder::in_memory()));
    let output = sim.run_streaming(&workload, p.seed);
    let jsonl = output
        .observer::<TraceRecorder>()
        .expect("recorder attached")
        .lines()
        .to_string();
    (jsonl, output)
}

fn assert_same_trace(reference: &str, other: &str, label: &str) {
    if reference == other {
        return;
    }
    for (i, (a, b)) in reference.lines().zip(other.lines()).enumerate() {
        assert_eq!(a, b, "{label}: trace diverges at line {}", i + 1);
    }
    assert_eq!(
        reference.lines().count(),
        other.lines().count(),
        "{label}: trace length diverges"
    );
}

/// The golden matrix: every worker count and both queue backends yield
/// the byte-identical event stream, counters and job records.
#[test]
fn streaming_trace_is_shard_count_independent() {
    let p = params();
    let mut reference_cfg = base_config(Backend::Serial).with_sampling();
    reference_cfg.seed = p.seed;
    let (golden, reference) = run_streaming_traced(&p, reference_cfg.clone());
    assert!(
        reference.counters.completed as f64 > p.expected_jobs() * 0.5,
        "the cell must actually run a calibrated workload"
    );
    assert!(reference.counters.suspensions > 0, "bursts must preempt");

    for shards in [1usize, 2, 4, 20] {
        for reference_queue in [false, true] {
            let mut config = base_config(Backend::Sharded { shards }).with_sampling();
            config.seed = p.seed;
            config.use_reference_queue = reference_queue;
            let label = format!("shards={shards} refq={reference_queue}");
            let (jsonl, output) = run_streaming_traced(&p, config);
            assert_same_trace(&golden, &jsonl, &label);
            assert_eq!(reference.counters, output.counters, "{label}: counters");
            assert_eq!(reference.end_time, output.end_time, "{label}: end time");
            assert_eq!(reference.jobs, output.jobs, "{label}: job records");
            assert_eq!(reference.pool_stats, output.pool_stats, "{label}: pools");
            assert_eq!(
                reference.utilization_series, output.utilization_series,
                "{label}: utilization series"
            );
        }
    }
}

/// With sampling off, a streaming run and a materialized serial run are
/// indistinguishable in every per-job record and every counter.
#[test]
fn streaming_matches_materialized_run() {
    let p = params();
    let site = p.build_site();
    let workload = p.build_workload();

    let mut config = base_config(Backend::Serial);
    config.seed = p.seed;
    let trace = workload.generate(p.seed);
    let materialized = Simulator::new(&site, trace.to_specs(), config.clone()).run_to_completion();

    for backend in [Backend::Serial, Backend::Sharded { shards: 4 }] {
        let mut cfg = config.clone();
        cfg.backend = backend;
        let mut sim = Simulator::new(&site, Vec::new(), cfg);
        // Any observer switches the run into retain mode so SimOutput
        // carries the job records to compare.
        sim.attach_observer(Box::new(TraceRecorder::in_memory()));
        let streamed = sim.run_streaming(&workload, p.seed);
        assert_eq!(materialized.jobs, streamed.jobs, "{backend:?}: job records");
        assert_eq!(
            materialized.counters, streamed.counters,
            "{backend:?}: counters"
        );
        assert_eq!(
            materialized.end_time, streamed.end_time,
            "{backend:?}: end time"
        );
        assert_eq!(
            materialized.pool_stats, streamed.pool_stats,
            "{backend:?}: pools"
        );
    }
}

/// Pipelining only engages on observer-less runs, so its conformance
/// signal is the deterministic outputs that survive without observers:
/// counters, end time, pool stats and the sampled series.
#[test]
fn pipelining_is_unobservable() {
    let p = params();
    let site = p.build_site();
    let workload = p.build_workload();
    let run = |pipeline: bool, backend: Backend| {
        let mut config = base_config(backend).with_sampling();
        config.seed = p.seed;
        config.stream_pipeline = pipeline;
        Simulator::new(&site, Vec::new(), config).run_streaming(&workload, p.seed)
    };
    let reference = run(false, Backend::Serial);
    for backend in [Backend::Serial, Backend::Sharded { shards: 4 }] {
        let piped = run(true, backend);
        assert_eq!(reference.counters, piped.counters, "{backend:?}: counters");
        assert_eq!(reference.end_time, piped.end_time, "{backend:?}: end time");
        assert_eq!(reference.pool_stats, piped.pool_stats, "{backend:?}: pools");
        assert_eq!(
            reference.suspended_series, piped.suspended_series,
            "{backend:?}: suspended series"
        );
        assert_eq!(
            reference.utilization_series, piped.utilization_series,
            "{backend:?}: utilization series"
        );
        assert_eq!(
            reference.waiting_series, piped.waiting_series,
            "{backend:?}: waiting series"
        );
        assert!(piped.jobs.is_empty(), "observer-less runs drop records");
    }
}

/// A year-long horizon (the paper's full trace window) streams end to
/// end; the trace is never materialized, and both backends agree.
#[test]
fn year_horizon_streams_to_completion() {
    let mut p = PerPoolParams::new(2, 0.02, 365 * 24 * 60);
    p.seed = 7;
    let site = p.build_site();
    let workload = p.build_workload();
    let run = |backend: Backend| {
        let mut config = base_config(backend);
        config.seed = p.seed;
        Simulator::new(&site, Vec::new(), config).run_streaming(&workload, p.seed)
    };
    let serial = run(Backend::Serial);
    let sharded = run(Backend::Sharded { shards: 2 });
    assert_eq!(serial.counters, sharded.counters);
    assert_eq!(serial.end_time, sharded.end_time);
    let expected = p.expected_jobs();
    let done = serial.counters.completed + serial.counters.unrunnable;
    assert!(
        (done as f64) > expected * 0.8 && (done as f64) < expected * 1.2,
        "year-scale job count {done} should be near the calibrated {expected:.0}"
    );
}

/// Configurations outside the streaming fast class are rejected loudly,
/// never silently degraded.
#[test]
#[should_panic(expected = "streaming backend supports only the NoRes fast class")]
fn non_fast_class_policies_are_rejected() {
    let p = params();
    let site = p.build_site();
    let workload = p.build_workload();
    let config = SimConfig::new(InitialKind::RoundRobin, StrategyKind::ResSusUtil);
    Simulator::new(&site, Vec::new(), config).run_streaming(&workload, p.seed);
}

/// Workloads without the pool-major pinning contract are rejected.
#[test]
#[should_panic(expected = "streaming workload contract violated")]
fn unpinned_workloads_are_rejected() {
    use netbatch::workload::scenarios::ScenarioParams;
    let params = ScenarioParams::normal_week(0.01);
    let site = params.build_site();
    let workload = params.build_workload();
    let config = SimConfig::new(InitialKind::RoundRobin, StrategyKind::NoRes);
    Simulator::new(&site, Vec::new(), config).run_streaming(&workload, params.seed);
}
