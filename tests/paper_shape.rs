//! Fast shape tests: the paper's qualitative claims at reduced scale.
//! These are the same assertions `repro_all` makes at report scale,
//! pinned into the test suite so regressions in the model or the policies
//! break CI rather than silently deforming the reproduction.
//!
//! Every run here rides under the online [`InvariantChecker`]: each shape
//! scenario doubles as a conservation/lifecycle stress test, and any
//! accounting bug panics with event history instead of skewing a metric.

use netbatch::core::experiment::{Experiment, ExperimentResult};
use netbatch::core::policy::{InitialKind, StrategyKind};
use netbatch::core::simulator::SimConfig;
use netbatch::workload::scenarios::{ScenarioParams, SiteSpec};
use netbatch::workload::trace::Trace;

const SHAPE_SCALE: f64 = 0.05;

fn run(
    site: &SiteSpec,
    trace: &Trace,
    initial: InitialKind,
    strategy: StrategyKind,
) -> ExperimentResult {
    let mut config = SimConfig::new(initial, strategy);
    config.check_invariants = true;
    Experiment::new(site.clone(), trace.clone(), config).run()
}

#[test]
fn normal_load_shapes_table1() {
    let params = ScenarioParams::normal_week(SHAPE_SCALE);
    let site = params.build_site();
    let trace = params.generate_trace();
    let nores = run(&site, &trace, InitialKind::RoundRobin, StrategyKind::NoRes);
    let util = run(
        &site,
        &trace,
        InitialKind::RoundRobin,
        StrategyKind::ResSusUtil,
    );
    let rand = run(
        &site,
        &trace,
        InitialKind::RoundRobin,
        StrategyKind::ResSusRand,
    );

    // The suspend rate sits in the paper's ~1% regime.
    assert!(
        (0.004..0.04).contains(&nores.suspend_rate),
        "suspend rate {:.3}% out of the calibrated band",
        nores.suspend_rate * 100.0
    );
    // Rescheduling suspended jobs improves their completion time...
    assert!(
        util.avg_ct_suspended < nores.avg_ct_suspended,
        "{} !< {}",
        util.avg_ct_suspended,
        nores.avg_ct_suspended
    );
    // ...without hurting everyone else...
    assert!(util.avg_ct_all < nores.avg_ct_all * 1.05);
    // ...and reduces system waste (paper: -33%).
    assert!(util.avg_wct() < nores.avg_wct());
    // ResSusUtil eliminates nearly all suspension time (paper: 1189 -> 82).
    assert!(util.avg_st < nores.avg_st * 0.25);
    // Careless random pool choice is worse than load-aware choice.
    assert!(rand.avg_wct() >= util.avg_wct());
}

#[test]
fn high_load_shapes_tables_2_and_4() {
    let params = ScenarioParams::normal_week(SHAPE_SCALE);
    let site = params.build_site().halved();
    let trace = params.generate_trace();
    let nores = run(&site, &trace, InitialKind::RoundRobin, StrategyKind::NoRes);
    let util = run(
        &site,
        &trace,
        InitialKind::RoundRobin,
        StrategyKind::ResSusUtil,
    );
    let rand = run(
        &site,
        &trace,
        InitialKind::RoundRobin,
        StrategyKind::ResSusRand,
    );
    let wait_util = run(
        &site,
        &trace,
        InitialKind::RoundRobin,
        StrategyKind::ResSusWaitUtil,
    );
    let wait_rand = run(
        &site,
        &trace,
        InitialKind::RoundRobin,
        StrategyKind::ResSusWaitRand,
    );

    // Suspended jobs benefit strongly under contention.
    assert!(util.avg_ct_suspended < nores.avg_ct_suspended * 0.85);
    // The random backfire (paper Table 2): worst overall performance.
    assert!(rand.avg_wct() > nores.avg_wct());
    assert!(rand.avg_ct_all > nores.avg_ct_all);
    // Wait rescheduling rescues queue-stuck jobs: big AvgCT(all) win.
    assert!(wait_util.avg_ct_all < util.avg_ct_all);
    // Random ≈ util once waiting jobs get second chances (paper §3.3)...
    assert!(wait_rand.avg_ct_suspended < 1.4 * wait_util.avg_ct_suspended);
    assert!(wait_rand.avg_ct_all < 1.1 * wait_util.avg_ct_all);
    // ...at the price of far more restarts (paper's closing caveat).
    assert!(wait_rand.counters.restarts_from_wait > 2 * wait_util.counters.restarts_from_wait);
}

#[test]
fn utilization_based_initial_shapes_tables_3_and_5() {
    let params = ScenarioParams::normal_week(SHAPE_SCALE);
    let site = params.build_site().halved();
    let trace = params.generate_trace();
    let nores = run(
        &site,
        &trace,
        InitialKind::UtilizationBased,
        StrategyKind::NoRes,
    );
    let util = run(
        &site,
        &trace,
        InitialKind::UtilizationBased,
        StrategyKind::ResSusUtil,
    );
    let wait_util = run(
        &site,
        &trace,
        InitialKind::UtilizationBased,
        StrategyKind::ResSusWaitUtil,
    );
    // Rescheduling remains effective with the smarter initial scheduler.
    assert!(util.avg_ct_suspended < nores.avg_ct_suspended);
    assert!(wait_util.avg_wct() < nores.avg_wct());
    // Utilization-based initial scheduling slashes baseline waiting vs RR
    // (it never routes jobs to loaded pools while idle ones exist).
    let rr_nores = run(&site, &trace, InitialKind::RoundRobin, StrategyKind::NoRes);
    assert!(nores.avg_wait_all < rr_nores.avg_wait_all);
}

#[test]
fn high_suspension_scenario_amplifies_benefits() {
    let params = ScenarioParams::high_suspension_week(SHAPE_SCALE);
    let site = params.build_site();
    let trace = params.generate_trace();
    let nores = run(&site, &trace, InitialKind::RoundRobin, StrategyKind::NoRes);
    let util = run(
        &site,
        &trace,
        InitialKind::RoundRobin,
        StrategyKind::ResSusUtil,
    );
    let normal = ScenarioParams::normal_week(SHAPE_SCALE);
    let normal_nores = run(
        &normal.build_site(),
        &normal.generate_trace(),
        InitialKind::RoundRobin,
        StrategyKind::NoRes,
    );
    assert!(nores.suspend_rate > 2.0 * normal_nores.suspend_rate);
    // Paper: -44% AvgCT(susp) and a visible AvgCT(all) improvement.
    assert!(util.avg_ct_suspended < nores.avg_ct_suspended * 0.7);
    assert!(util.avg_ct_all < nores.avg_ct_all);
}

#[test]
fn year_trace_reproduces_figure2_shape() {
    let params = ScenarioParams::year(0.02);
    let mut config = SimConfig::new(InitialKind::RoundRobin, StrategyKind::NoRes);
    config.check_invariants = true;
    let result = Experiment::new(params.build_site(), params.generate_trace(), config).run();
    let cdf = result.suspension_cdf();
    assert!(
        cdf.len() > 50,
        "need a suspension population, got {}",
        cdf.len()
    );
    let median = cdf.median().expect("non-empty");
    let mean = cdf.mean();
    // Long-tailed: mean well above median, and a heavy >1100-minute tail
    // exists (paper: median 437, mean 905, 20% above 1100).
    assert!(mean > 1.2 * median, "mean {mean:.0} vs median {median:.0}");
    let tail = 1.0 - cdf.at(1100.0);
    assert!(tail > 0.05, "tail fraction {tail:.3}");
    // The calibrated magnitudes sit within 3x of the paper's.
    assert!((150.0..1400.0).contains(&median), "median {median:.0}");
    assert!((300.0..2800.0).contains(&mean), "mean {mean:.0}");
}

#[test]
fn queue_and_smart_policies_have_their_shapes() {
    let params = ScenarioParams::normal_week(SHAPE_SCALE);
    let site = params.build_site().halved();
    let trace = params.generate_trace();
    let nores = run(&site, &trace, InitialKind::RoundRobin, StrategyKind::NoRes);
    let util = run(
        &site,
        &trace,
        InitialKind::RoundRobin,
        StrategyKind::ResSusUtil,
    );
    let queue = run(
        &site,
        &trace,
        InitialKind::RoundRobin,
        StrategyKind::ResSusQueue,
    );
    let wait_util = run(
        &site,
        &trace,
        InitialKind::RoundRobin,
        StrategyKind::ResSusWaitUtil,
    );
    let smart = run(
        &site,
        &trace,
        InitialKind::RoundRobin,
        StrategyKind::ResSusWaitSmart,
    );

    // Queue-length-guided restarts are a real rescheduling policy: they
    // move suspended jobs (restarts happen) and strongly cut their
    // completion and suspension time vs the baseline.
    assert!(queue.counters.restarts_from_suspend > 0);
    assert!(
        queue.avg_ct_suspended < nores.avg_ct_suspended * 0.85,
        "queue {} !<< nores {}",
        queue.avg_ct_suspended,
        nores.avg_ct_suspended
    );
    assert!(queue.avg_st < nores.avg_st * 0.5);
    assert!(queue.avg_ct_all < nores.avg_ct_all);
    // But queue length is a noisier load signal than utilization: the
    // queue policy stays within sight of ResSusUtil without beating it
    // decisively on suspended-job completion time.
    assert!(
        queue.avg_ct_suspended < 1.25 * util.avg_ct_suspended,
        "queue {} vs util {}",
        queue.avg_ct_suspended,
        util.avg_ct_suspended
    );
    // The multi-metric wait policy reschedules far more aggressively than
    // the pure wait-time trigger (it also watches relative pool load)...
    assert!(smart.counters.restarts_from_wait > wait_util.counters.restarts_from_wait);
    // ...and that extra signal pays: big wins over both the baseline and
    // suspend-only rescheduling on overall metrics.
    assert!(smart.avg_wct() < nores.avg_wct() * 0.5);
    assert!(smart.avg_ct_all < util.avg_ct_all);
    assert!(smart.avg_wct() < wait_util.avg_wct() * 1.1);
}

#[test]
fn extension_mechanisms_have_their_characteristic_tradeoffs() {
    let params = ScenarioParams::normal_week(SHAPE_SCALE);
    let site = params.build_site().halved();
    let trace = params.generate_trace();
    let nores = run(&site, &trace, InitialKind::RoundRobin, StrategyKind::NoRes);
    let restart = run(
        &site,
        &trace,
        InitialKind::RoundRobin,
        StrategyKind::ResSusUtil,
    );
    let migrate = run(
        &site,
        &trace,
        InitialKind::RoundRobin,
        StrategyKind::MigrateSusUtil,
    );
    let dup = run(
        &site,
        &trace,
        InitialKind::RoundRobin,
        StrategyKind::DupSusUtil,
    );
    let smart = run(
        &site,
        &trace,
        InitialKind::RoundRobin,
        StrategyKind::ResSusWaitSmart,
    );

    // Migration keeps progress, so it beats restart-based rescheduling on
    // suspended-job completion time at the default (paper-derived) costs.
    assert!(
        migrate.avg_ct_suspended < restart.avg_ct_suspended,
        "migrate {} !< restart {}",
        migrate.avg_ct_suspended,
        restart.avg_ct_suspended
    );
    assert!(migrate.counters.migrations > 0);
    // Duplication burns redundant capacity: more waste than migration.
    assert!(dup.counters.duplicates_launched > 0);
    assert!(dup.waste.avg_resched() > migrate.waste.avg_resched());
    // Every mechanism still beats the baseline for suspended jobs.
    for r in [&restart, &migrate, &dup] {
        assert!(r.avg_ct_suspended < nores.avg_ct_suspended);
    }
    // The multi-metric policy is at least as good as ResSusWaitUtil on
    // overall waste (it sees strictly more signal).
    let wait_util = run(
        &site,
        &trace,
        InitialKind::RoundRobin,
        StrategyKind::ResSusWaitUtil,
    );
    assert!(smart.avg_wct() < wait_util.avg_wct() * 1.1);
}
