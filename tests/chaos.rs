//! Chaos harness: conservation under churn. Arbitrary small workloads run
//! under *every* strategy while a randomized [`FaultModel`] takes machines
//! (and whole pools) down and back up, with the resilience policy toggled
//! both ways, all under the online [`InvariantChecker`]:
//!
//! 1. every run drains — no job is lost in an eviction, parked forever in
//!    backoff, or duplicated into two completions
//!    (`completed + unrunnable == total_jobs`);
//! 2. fault handling is deterministic — same seed, byte-identical traces;
//! 3. the recorded `retry_backoff` events reconcile exactly with the run's
//!    `retries_scheduled` counter;
//! 4. (regression) overlapping outage intervals for one machine are merged
//!    before seeding, so a machine never "resurrects" at the end of a
//!    shorter, nested outage while a longer one still has it down.

use netbatch::cluster::ids::PoolId;
use netbatch::cluster::pool::PoolConfig;
use netbatch::core::faults::{FaultModel, LifecycleModel, ResiliencePolicy};
use netbatch::core::observer::{InvariantChecker, TraceRecorder};
use netbatch::core::policy::{InitialKind, StrategyKind};
use netbatch::core::simulator::{Backend, MachineFailure, SimConfig, SimOutput, Simulator};
use netbatch::sim_engine::time::{SimDuration, SimTime};
use netbatch::workload::scenarios::SiteSpec;
use netbatch::workload::trace::{Trace, TraceRecord};
use proptest::prelude::*;

fn small_site(pools: u16, machines: u32, cores: u32) -> SiteSpec {
    SiteSpec {
        pools: (0..pools)
            .map(|p| PoolConfig::uniform(PoolId(p), machines, cores, 8192))
            .collect(),
    }
}

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (
        0u64..2000,                                // submit minute
        1u64..500,                                 // runtime
        1u32..3,                                   // cores
        prop::sample::select(vec![0u8, 0, 0, 10]), // mostly low, some high
        prop::bool::ANY,                           // restricted affinity?
    )
        .prop_map(
            |(submit, runtime, cores, priority, restricted)| TraceRecord {
                submit_minute: submit,
                runtime_minutes: runtime,
                cores,
                memory_mb: 512,
                priority,
                affinity: if restricted && priority >= 10 {
                    vec![0]
                } else {
                    vec![]
                },
                task: None,
            },
        )
}

fn arb_any_strategy() -> impl Strategy<Value = StrategyKind> {
    prop::sample::select(vec![
        StrategyKind::NoRes,
        StrategyKind::ResSusUtil,
        StrategyKind::ResSusRand,
        StrategyKind::ResSusWaitUtil,
        StrategyKind::ResSusWaitRand,
        StrategyKind::ResSusQueue,
        StrategyKind::ResSusWaitSmart,
        StrategyKind::MigrateSusUtil,
        StrategyKind::DupSusUtil,
    ])
}

/// Randomized fault intensity: MTBF short enough that a 2.5k-minute
/// workload sees real churn, repairs always finite so every run can drain.
fn arb_fault_model() -> impl Strategy<Value = FaultModel> {
    (
        200u64..3000, // mtbf minutes
        30u64..300,   // mttr minutes
        0u32..2,      // correlated pool outages
        0u64..30,     // flaky fraction, percent
    )
        .prop_map(|(mtbf, mttr, pool_outages, flaky_pct)| {
            FaultModel::new(
                SimDuration::from_minutes(mtbf),
                SimDuration::from_minutes(mttr),
                SimDuration::from_minutes(3000),
            )
            .with_pool_outages(pool_outages, SimDuration::from_minutes(mttr))
            .with_flaky(flaky_pct as f64 / 100.0, 8)
        })
}

/// Randomized lifecycle intensity over the same 3000-minute window as
/// [`arb_fault_model`]: maintenance cadence, rolling-update waves, health
/// cordons and drain leads all vary, so the drain/evacuation machinery is
/// exercised across schedule shapes (including degenerate all-off plans).
fn arb_lifecycle_model() -> impl Strategy<Value = LifecycleModel> {
    (
        5u64..180,                                   // drain lead minutes
        prop::sample::select(vec![0u64, 600, 1200]), // maintenance period (0 = off)
        30u64..180,                                  // maintenance outage minutes
        0u32..3,                                     // rolling waves
        1u64..100,                                   // rolling fraction, percent
        prop::sample::select(vec![0u32, 300, 600]),  // cordon threshold, milli
        0u64..40,                                    // flaky fraction, percent
    )
        .prop_map(
            |(lead, every, duration, waves, roll_pct, cordon, flaky_pct)| {
                LifecycleModel::new(SimDuration::from_minutes(3000))
                    .with_drain_lead(SimDuration::from_minutes(lead))
                    .with_maintenance(
                        SimDuration::from_minutes(every),
                        SimDuration::from_minutes(duration),
                    )
                    .with_rolling(
                        waves,
                        roll_pct as f64 / 100.0,
                        SimDuration::from_minutes(60),
                    )
                    .with_cordon(cordon, SimDuration::from_minutes(500))
                    .with_flaky(flaky_pct as f64 / 100.0, 8)
            },
        )
}

/// Runs a faulty workload with the invariant checker and an in-memory
/// recorder attached. A violated invariant panics inside, failing the
/// property.
fn run_chaos(
    records: Vec<TraceRecord>,
    strategy: StrategyKind,
    seed: u64,
    model: FaultModel,
    hardened: bool,
) -> SimOutput {
    let site = small_site(3, 2, 2);
    let trace = Trace::from_records(records);
    let mut config = SimConfig::new(InitialKind::RoundRobin, strategy);
    config.seed = seed;
    config.check_invariants = true;
    config.fault_model = Some(model);
    config.resilience = if hardened {
        ResiliencePolicy::hardened()
    } else {
        ResiliencePolicy::disabled()
    };
    let mut sim = Simulator::new(&site, trace.to_specs(), config);
    sim.attach_observer(Box::new(TraceRecorder::in_memory()));
    sim.run_to_completion()
}

/// Like [`run_chaos`] but with a machine-lifecycle plan layered on top of
/// the stochastic faults, health-aware scheduling with proactive
/// evacuation toggled by `aware`, and a selectable backend.
fn run_lifecycle_chaos(
    records: Vec<TraceRecord>,
    strategy: StrategyKind,
    seed: u64,
    model: FaultModel,
    lifecycle: LifecycleModel,
    aware: bool,
    backend: Backend,
) -> SimOutput {
    let site = small_site(3, 2, 2);
    let trace = Trace::from_records(records);
    let mut config = SimConfig::new(InitialKind::RoundRobin, strategy);
    config.seed = seed;
    config.check_invariants = true;
    config.fault_model = Some(model);
    config.lifecycle = Some(lifecycle);
    config.health_aware = aware;
    config.resilience = if aware {
        ResiliencePolicy::hardened().with_evacuation()
    } else {
        ResiliencePolicy::hardened()
    };
    config.backend = backend;
    let mut sim = Simulator::new(&site, trace.to_specs(), config);
    sim.attach_observer(Box::new(TraceRecorder::in_memory()));
    sim.run_to_completion()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Under arbitrary fault plans and every strategy, hardened or not,
    /// the checker stays silent and every job settles exactly once.
    #[test]
    fn prop_chaos_conservation_under_churn(
        records in prop::collection::vec(arb_record(), 1..40),
        strategy in arb_any_strategy(),
        seed in 0u64..1000,
        model in arb_fault_model(),
        hardened in prop::bool::ANY,
    ) {
        let n = records.len() as u64;
        let out = run_chaos(records, strategy, seed, model, hardened);
        let checker = out
            .observer::<InvariantChecker>()
            .expect("checker attached via config");
        prop_assert!(checker.events_seen() > 0, "checker saw no events");
        prop_assert_eq!(
            out.counters.completed + out.counters.unrunnable,
            n,
            "job lost or double-settled: {} completed + {} unrunnable != {} submitted",
            out.counters.completed,
            out.counters.unrunnable,
            n
        );
        // The journal reconciles with the resilience counters.
        let rec = out.observer::<TraceRecorder>().expect("recorder attached");
        let count = |kind: &str| rec.kind_counts().get(kind).copied().unwrap_or(0);
        prop_assert_eq!(count("retry_backoff"), out.counters.retries_scheduled);
        prop_assert_eq!(count("failure_evict"), out.counters.failure_evictions);
        prop_assert_eq!(count("unrunnable"), out.counters.unrunnable);
        if !hardened {
            prop_assert_eq!(out.counters.retries_scheduled, 0);
            prop_assert_eq!(count("blacklist"), 0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fault generation and resilient rescheduling are fully deterministic:
    /// the same seed replays a byte-identical event stream.
    #[test]
    fn prop_chaos_same_seed_same_trace(
        records in prop::collection::vec(arb_record(), 1..40),
        strategy in arb_any_strategy(),
        seed in 0u64..1000,
        model in arb_fault_model(),
        hardened in prop::bool::ANY,
    ) {
        let a = run_chaos(records.clone(), strategy, seed, model.clone(), hardened);
        let b = run_chaos(records, strategy, seed, model, hardened);
        let lines = |out: &SimOutput| {
            out.observer::<TraceRecorder>()
                .expect("recorder attached")
                .lines()
                .to_string()
        };
        prop_assert_eq!(lines(&a), lines(&b), "same-seed traces diverge");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random lifecycle plans (drains, maintenance kills, rolling waves,
    /// cordons) layered on random fault plans, across every strategy with
    /// evacuation toggled both ways: the invariant checker stays silent
    /// (no dispatch onto draining machines, legal transitions, evacuations
    /// inside their drain windows), every job settles exactly once, and
    /// the journal's evacuation events reconcile with the run counter.
    #[test]
    fn prop_lifecycle_chaos_conservation(
        records in prop::collection::vec(arb_record(), 1..40),
        strategy in arb_any_strategy(),
        seed in 0u64..1000,
        model in arb_fault_model(),
        lifecycle in arb_lifecycle_model(),
        aware in prop::bool::ANY,
    ) {
        let n = records.len() as u64;
        let out = run_lifecycle_chaos(
            records, strategy, seed, model, lifecycle, aware, Backend::Serial,
        );
        let checker = out
            .observer::<InvariantChecker>()
            .expect("checker attached via config");
        prop_assert!(checker.events_seen() > 0, "checker saw no events");
        prop_assert_eq!(
            out.counters.completed + out.counters.unrunnable,
            n,
            "job lost or double-settled under lifecycle churn"
        );
        let rec = out.observer::<TraceRecorder>().expect("recorder attached");
        let count = |kind: &str| rec.kind_counts().get(kind).copied().unwrap_or(0);
        prop_assert_eq!(count("evacuation"), out.counters.evacuations);
        prop_assert_eq!(
            count("machine_draining"),
            count("machine_undrained"),
            "every drain window must close"
        );
        if !aware {
            prop_assert_eq!(out.counters.evacuations, 0,
                "evacuation fired with the policy disabled");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Lifecycle events are part of the determinism contract on *both*
    /// backends: the serial reference and the sharded kernel (at 2 and 4
    /// shards) must produce byte-identical traces for the same seed.
    #[test]
    fn prop_lifecycle_chaos_backend_equivalence(
        records in prop::collection::vec(arb_record(), 1..30),
        strategy in arb_any_strategy(),
        seed in 0u64..1000,
        model in arb_fault_model(),
        lifecycle in arb_lifecycle_model(),
        aware in prop::bool::ANY,
    ) {
        let lines = |out: &SimOutput| {
            out.observer::<TraceRecorder>()
                .expect("recorder attached")
                .lines()
                .to_string()
        };
        let serial = lines(&run_lifecycle_chaos(
            records.clone(), strategy, seed, model.clone(), lifecycle.clone(),
            aware, Backend::Serial,
        ));
        for shards in [2usize, 4] {
            let sharded = lines(&run_lifecycle_chaos(
                records.clone(), strategy, seed, model.clone(), lifecycle.clone(),
                aware, Backend::Sharded { shards },
            ));
            prop_assert_eq!(
                &serial, &sharded,
                "serial and sharded x{} traces diverge under lifecycle churn", shards
            );
        }
    }
}

/// Regression: two overlapping outages for the same machine used to seed
/// independent `MachineUp` events, resurrecting the machine when the
/// *shorter* outage ended. The plan normalization merges them, so exactly
/// one down/up pair reaches the kernel and the machine stays down until
/// the latest repair.
#[test]
fn overlapping_outages_do_not_resurrect_early() {
    let site = small_site(1, 1, 2);
    let trace = Trace::from_records(vec![TraceRecord {
        submit_minute: 0,
        runtime_minutes: 20,
        cores: 1,
        memory_mb: 512,
        priority: 0,
        affinity: vec![],
        task: None,
    }]);
    let mut config = SimConfig::new(InitialKind::RoundRobin, StrategyKind::NoRes);
    config.check_invariants = true;
    // A long outage [10, 110) with a shorter one [50, 60) nested inside.
    config.failures = vec![
        MachineFailure {
            pool: PoolId(0),
            machine: 0.into(),
            at: SimTime::from_minutes(10),
            down_for: Some(SimDuration::from_minutes(100)),
        },
        MachineFailure {
            pool: PoolId(0),
            machine: 0.into(),
            at: SimTime::from_minutes(50),
            down_for: Some(SimDuration::from_minutes(10)),
        },
    ];
    let mut sim = Simulator::new(&site, trace.to_specs(), config);
    sim.attach_observer(Box::new(TraceRecorder::in_memory()));
    let out = sim.run_to_completion();
    let rec = out.observer::<TraceRecorder>().expect("recorder attached");
    let count = |kind: &str| rec.kind_counts().get(kind).copied().unwrap_or(0);
    // One merged outage: one down, one up — not two of each (the checker
    // would also flag the double-down, but pin the seeding directly).
    assert_eq!(count("machine_down"), 1, "overlapping outages not merged");
    assert_eq!(
        count("machine_up"),
        1,
        "nested outage seeded its own repair"
    );
    assert_eq!(out.counters.completed, 1);
    // The sole machine was down until minute 110; the 20-minute job can
    // only finish after 130. Early resurrection would finish it by ~80.
    let complete_line = rec
        .lines()
        .lines()
        .find(|l| l.contains("\"ev\":\"complete\""))
        .expect("job completed");
    let t: u64 = complete_line["{\"t\":".len()..]
        .split(',')
        .next()
        .and_then(|s| s.parse().ok())
        .expect("complete line has a timestamp");
    assert!(
        t >= 130,
        "job finished at t={t}, before the merged outage ended (early resurrection)"
    );
}
