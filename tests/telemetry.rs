//! Telemetry integration tests: the observer's online aggregates must
//! reconcile with the event-sourced [`ExperimentResult`] computed from
//! the same run, the exposition must validate, and attaching telemetry
//! must never change simulation outcomes.

use netbatch::core::experiment::ExperimentResult;
use netbatch::core::policy::{InitialKind, StrategyKind};
use netbatch::core::simulator::{SimConfig, Simulator};
use netbatch::core::telemetry::Telemetry;
use netbatch::metrics::export::validate_exposition;
use netbatch::workload::scenarios::ScenarioParams;

const TEST_SCALE: f64 = 0.02;

/// Runs one cell with telemetry (and sampling) attached, returning both
/// the event-sourced result and the telemetry observer.
fn run_with_telemetry(strategy: StrategyKind) -> (ExperimentResult, Telemetry) {
    let params = ScenarioParams::normal_week(TEST_SCALE);
    let site = params.build_site();
    let trace = params.generate_trace();
    let initial = InitialKind::RoundRobin;
    let config = SimConfig::new(initial, strategy)
        .with_sampling()
        .with_telemetry();
    let mut output = Simulator::new(&site, trace.to_specs(), config).run_to_completion();
    let observers = std::mem::take(&mut output.observers);
    let result = ExperimentResult::from_output(initial, strategy, output);
    let tel = observers
        .into_iter()
        .find_map(|o| o.as_any().downcast_ref::<Telemetry>().cloned())
        .expect("telemetry observer attached via SimConfig");
    (result, tel)
}

#[test]
fn summary_reconciles_with_experiment_result() {
    for strategy in [StrategyKind::NoRes, StrategyKind::ResSusWaitUtil] {
        let (r, tel) = run_with_telemetry(strategy);
        let s = tel.summary();
        assert_eq!(s.total_jobs, r.total_jobs, "{strategy:?}");
        assert_eq!(s.suspended_jobs, r.suspended_jobs(), "{strategy:?}");
        assert!(
            (s.suspend_rate - r.suspend_rate).abs() < 1e-12,
            "{strategy:?}"
        );
        assert!((s.avg_ct_all - r.avg_ct_all).abs() < 1e-9, "{strategy:?}");
        assert!(
            (s.avg_ct_suspended - r.avg_ct_suspended).abs() < 1e-9,
            "{strategy:?}"
        );
        assert!((s.avg_st - r.avg_st).abs() < 1e-9, "{strategy:?}");
        assert!((s.avg_wct - r.avg_wct()).abs() < 1e-9, "{strategy:?}");
        assert_eq!(s.end_minutes, r.end_time.as_minutes(), "{strategy:?}");
    }
}

#[test]
fn event_counts_reconcile_with_run_counters() {
    let (r, tel) = run_with_telemetry(StrategyKind::ResSusWaitUtil);
    let counts = tel.event_counts();
    let get = |kind: &str| counts.get(kind).copied().unwrap_or(0);
    assert_eq!(get("submit"), r.total_jobs);
    assert_eq!(get("complete"), r.counters.completed);
    assert_eq!(get("suspend"), r.counters.suspensions);
    assert_eq!(
        get("restart_from_suspend"),
        r.counters.restarts_from_suspend
    );
    assert_eq!(get("restart_from_wait"), r.counters.restarts_from_wait);
    assert_eq!(get("migrate"), r.counters.migrations);
    assert_eq!(get("duplicate"), r.counters.duplicates_launched);
    assert_eq!(get("unrunnable"), r.counters.unrunnable);
    assert!(get("dispatch") >= r.counters.completed);
    assert_eq!(get("sample"), tel.samples());
}

#[test]
fn spans_drain_and_exposition_validates() {
    let (r, tel) = run_with_telemetry(StrategyKind::ResSusWaitUtil);
    // A drained run leaves no open lifecycle interval and a well-formed
    // event stream produces no unmatched closes.
    assert_eq!(tel.open_spans(), 0);
    assert_eq!(tel.unmatched_ends(), 0);
    let prom = tel.render_prom();
    let samples = validate_exposition(&prom).expect("exposition must parse");
    assert!(
        samples > 50,
        "expected a rich exposition, got {samples} samples"
    );
    assert!(
        prom.contains("netbatch_run_info{strategy=\"ResSusWaitUtil\",initial=\"round-robin\"} 1")
    );
    assert!(prom.contains("netbatch_span_open 0"));
    assert!(prom.contains("netbatch_span_unmatched_total 0"));
    assert!(prom.contains(&format!("netbatch_jobs_total {}", r.total_jobs)));
}

#[test]
fn report_sections_render_from_a_real_run() {
    let (_, tel) = run_with_telemetry(StrategyKind::ResSusUtil);
    let md = tel.render_markdown();
    for section in [
        "## Summary (Table 1 shape)",
        "## Suspension-time CDF (Figure 2)",
        "## Site timeline (Figure 4, 100-minute buckets)",
        "## Per-pool",
        "## Phase latency histograms",
    ] {
        assert!(md.contains(section), "missing section {section}");
    }
    let cdf = tel.cdf_csv();
    assert!(cdf.starts_with("minutes,pct_le\n"));
    let timeline = tel.timeline_csv();
    assert!(timeline.starts_with("minute,suspended,utilization_pct,waiting,down_machines\n"));
    assert!(
        timeline.lines().count() > 10,
        "a sampled week should aggregate into many timeline buckets"
    );
    let pools = tel.pools_csv();
    assert_eq!(pools.lines().count(), 21, "20 pools + header");
}

#[test]
fn telemetry_is_deterministic() {
    let (_, a) = run_with_telemetry(StrategyKind::ResSusWaitUtil);
    let (_, b) = run_with_telemetry(StrategyKind::ResSusWaitUtil);
    assert_eq!(a.render_prom(), b.render_prom());
    assert_eq!(a.render_markdown(), b.render_markdown());
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn attaching_telemetry_does_not_change_outcomes() {
    let params = ScenarioParams::normal_week(TEST_SCALE);
    let site = params.build_site();
    let trace = params.generate_trace();
    let initial = InitialKind::RoundRobin;
    let strategy = StrategyKind::ResSusUtil;
    let plain = ExperimentResult::from_output(
        initial,
        strategy,
        Simulator::new(&site, trace.to_specs(), SimConfig::new(initial, strategy))
            .run_to_completion(),
    );
    let (with_tel, _) = {
        let config = SimConfig::new(initial, strategy).with_telemetry();
        let mut output = Simulator::new(&site, trace.to_specs(), config).run_to_completion();
        let observers = std::mem::take(&mut output.observers);
        (
            ExperimentResult::from_output(initial, strategy, output),
            observers,
        )
    };
    assert_eq!(plain.counters, with_tel.counters);
    assert_eq!(plain.avg_ct_all, with_tel.avg_ct_all);
    assert_eq!(plain.suspend_rate, with_tel.suspend_rate);
    assert_eq!(plain.end_time, with_tel.end_time);
}
