//! Property-based conformance for the observer layer: for *arbitrary*
//! small workloads under *every* rescheduling strategy,
//!
//! 1. the online [`InvariantChecker`] never fires (it panics with event
//!    history on the first conservation or lifecycle violation), and
//! 2. the [`TraceRecorder`]'s per-kind event counts reconcile exactly
//!    with the run's [`RunCounters`] — the trace is a faithful journal,
//!    not an approximation.

use netbatch::cluster::ids::PoolId;
use netbatch::cluster::pool::PoolConfig;
use netbatch::core::observer::{InvariantChecker, TraceRecorder};
use netbatch::core::policy::{InitialKind, StrategyKind};
use netbatch::core::simulator::{SimConfig, SimOutput, Simulator};
use netbatch::workload::scenarios::SiteSpec;
use netbatch::workload::trace::{Trace, TraceRecord};
use proptest::prelude::*;

fn small_site(pools: u16, machines: u32, cores: u32) -> SiteSpec {
    SiteSpec {
        pools: (0..pools)
            .map(|p| PoolConfig::uniform(PoolId(p), machines, cores, 8192))
            .collect(),
    }
}

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (
        0u64..2000,                                // submit minute
        1u64..500,                                 // runtime
        1u32..3,                                   // cores
        prop::sample::select(vec![0u8, 0, 0, 10]), // mostly low, some high
        prop::bool::ANY,                           // restricted affinity?
    )
        .prop_map(
            |(submit, runtime, cores, priority, restricted)| TraceRecord {
                submit_minute: submit,
                runtime_minutes: runtime,
                cores,
                memory_mb: 512,
                priority,
                affinity: if restricted && priority >= 10 {
                    vec![0]
                } else {
                    vec![]
                },
                task: None,
            },
        )
}

/// Every strategy the simulator implements, including the extension
/// mechanisms (migration, duplication, multi-metric wait rescheduling).
fn arb_any_strategy() -> impl Strategy<Value = StrategyKind> {
    prop::sample::select(vec![
        StrategyKind::NoRes,
        StrategyKind::ResSusUtil,
        StrategyKind::ResSusRand,
        StrategyKind::ResSusWaitUtil,
        StrategyKind::ResSusWaitRand,
        StrategyKind::ResSusQueue,
        StrategyKind::ResSusWaitSmart,
        StrategyKind::MigrateSusUtil,
        StrategyKind::DupSusUtil,
    ])
}

/// Runs a workload with the invariant checker and an in-memory recorder
/// attached. A violated invariant panics inside, failing the property.
fn run_observed(records: Vec<TraceRecord>, strategy: StrategyKind, seed: u64) -> SimOutput {
    let site = small_site(3, 2, 2);
    let trace = Trace::from_records(records);
    let mut config = SimConfig::new(InitialKind::RoundRobin, strategy);
    config.seed = seed;
    config.check_invariants = true;
    let mut sim = Simulator::new(&site, trace.to_specs(), config);
    sim.attach_observer(Box::new(TraceRecorder::in_memory()));
    sim.run_to_completion()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The invariant checker stays silent on arbitrary workloads under
    /// every policy: conservation, lifecycle tiling, queue order, and
    /// resume order all hold online, at every event, not just at the end.
    #[test]
    fn prop_invariant_checker_never_fires(
        records in prop::collection::vec(arb_record(), 1..60),
        strategy in arb_any_strategy(),
        seed in 0u64..1000,
    ) {
        let n = records.len() as u64;
        let out = run_observed(records, strategy, seed);
        let checker = out
            .observer::<InvariantChecker>()
            .expect("checker attached via config");
        prop_assert!(checker.events_seen() > 0, "checker saw no events");
        prop_assert_eq!(out.counters.completed, n);
    }

    /// The recorded trace reconciles, count for count, with the run's
    /// aggregate counters under every strategy. Note `complete` matches
    /// `completed` exactly even with duplication: a shadow winner's
    /// completion is recorded but not counted, while the original it
    /// proxy-finishes is counted but recorded as `proxy_finish` — the two
    /// cancel in both race outcomes.
    #[test]
    fn prop_trace_counts_reconcile_with_counters(
        records in prop::collection::vec(arb_record(), 1..60),
        strategy in arb_any_strategy(),
        seed in 0u64..1000,
    ) {
        let n = records.len() as u64;
        let out = run_observed(records, strategy, seed);
        let rec = out
            .observer::<TraceRecorder>()
            .expect("recorder attached");
        let count = |kind: &str| rec.kind_counts().get(kind).copied().unwrap_or(0);
        prop_assert_eq!(count("submit"), n);
        prop_assert_eq!(count("complete"), out.counters.completed);
        prop_assert_eq!(count("suspend"), out.counters.suspensions);
        prop_assert_eq!(count("restart_from_suspend"), out.counters.restarts_from_suspend);
        prop_assert_eq!(count("restart_from_wait"), out.counters.restarts_from_wait);
        prop_assert_eq!(count("migrate"), out.counters.migrations);
        prop_assert_eq!(count("failure_evict"), out.counters.failure_evictions);
        prop_assert_eq!(count("duplicate"), out.counters.duplicates_launched);
        prop_assert_eq!(count("unrunnable"), out.counters.unrunnable);
        // The recorder's total is the sum of its per-kind counts: nothing
        // is recorded without being classified.
        let total: u64 = rec.kind_counts().values().sum();
        prop_assert_eq!(rec.events(), total);
    }
}
