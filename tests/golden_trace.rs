//! Golden-trace conformance: the recorded event stream for one fixed cell
//! of Table 1 (NoRes strategy, round-robin initial scheduler, normal-load
//! week at a small scale) must stay **byte-identical** to the committed
//! fixture. Any change to event ordering, payload rendering, or simulator
//! scheduling shows up here as a one-line diff before it can silently
//! shift the paper's tables.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_trace
//! ```
//!
//! and review the fixture diff like any other code change.

use netbatch::core::observer::TraceRecorder;
use netbatch::core::policy::{InitialKind, StrategyKind};
use netbatch::core::simulator::{SimConfig, Simulator};
use netbatch::core::telemetry::Telemetry;
use netbatch::workload::scenarios::ScenarioParams;
use std::fs;

/// Scale for the fixture cell: small enough to keep the fixture reviewable,
/// large enough to exercise dispatch, queueing, suspension, and completion.
const GOLDEN_SCALE: f64 = 0.002;

/// Fixture path relative to the crate root.
const GOLDEN_PATH: &str = "tests/golden/table1_nores_rr.jsonl";

/// Runs the Table 1 NoRes/round-robin cell with a recorder (and the
/// invariant checker riding along) and returns the JSONL event stream.
fn record_table1_nores_rr_on(use_reference_queue: bool) -> String {
    let params = ScenarioParams::normal_week(GOLDEN_SCALE);
    let site = params.build_site();
    let trace = params.generate_trace();
    let mut config = SimConfig::new(InitialKind::RoundRobin, StrategyKind::NoRes);
    config.check_invariants = true;
    config.use_reference_queue = use_reference_queue;
    let mut sim = Simulator::new(&site, trace.to_specs(), config);
    sim.attach_observer(Box::new(TraceRecorder::in_memory()));
    let out = sim.run_to_completion();
    out.observer::<TraceRecorder>()
        .expect("recorder attached")
        .lines()
        .to_string()
}

fn record_table1_nores_rr() -> String {
    record_table1_nores_rr_on(false)
}

#[test]
fn table1_nores_rr_trace_matches_golden_fixture() {
    let path = format!("{}/{GOLDEN_PATH}", env!("CARGO_MANIFEST_DIR"));
    let recorded = record_table1_nores_rr();
    assert!(
        recorded.lines().count() > 100,
        "fixture scale too small to be a meaningful conformance check"
    );

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(&path, &recorded).expect("write golden fixture");
        println!("golden fixture regenerated at {path}");
        return;
    }

    let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("cannot read {path}: {e}\nregenerate with: UPDATE_GOLDEN=1 cargo test --test golden_trace")
    });

    if recorded != golden {
        // Report the first diverging line before failing, so the diff is
        // readable without dumping two multi-thousand-line streams.
        for (i, (got, want)) in recorded.lines().zip(golden.lines()).enumerate() {
            assert_eq!(
                got,
                want,
                "trace diverges from golden fixture at line {}",
                i + 1
            );
        }
        panic!(
            "trace length diverges from golden fixture: {} vs {} lines \
             (first {} identical)",
            recorded.lines().count(),
            golden.lines().count(),
            recorded.lines().count().min(golden.lines().count())
        );
    }
}

#[test]
fn reference_heap_queue_reproduces_the_golden_fixture() {
    // The timer-wheel and the reference binary-heap event queue are
    // contractually identical; prove it end to end by replaying the golden
    // cell on the heap backend. Both backends must match the committed
    // fixture byte for byte.
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        // The sibling test owns regeneration; this one only compares.
        return;
    }
    let path = format!("{}/{GOLDEN_PATH}", env!("CARGO_MANIFEST_DIR"));
    let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("cannot read {path}: {e}\nregenerate with: UPDATE_GOLDEN=1 cargo test --test golden_trace")
    });
    let on_heap = record_table1_nores_rr_on(true);
    assert!(
        on_heap == golden,
        "reference-heap backend diverges from the golden fixture — the \
         two event-queue implementations are no longer equivalent"
    );
}

#[test]
fn telemetry_rides_along_without_perturbing_the_trace() {
    // Same cell, but with the telemetry observer attached (and never
    // exported): the recorded stream must still match the fixture byte
    // for byte — telemetry is measurement, not mechanism.
    let params = ScenarioParams::normal_week(GOLDEN_SCALE);
    let site = params.build_site();
    let trace = params.generate_trace();
    let mut config = SimConfig::new(InitialKind::RoundRobin, StrategyKind::NoRes);
    config.check_invariants = true;
    config.telemetry = true;
    let mut sim = Simulator::new(&site, trace.to_specs(), config);
    sim.attach_observer(Box::new(TraceRecorder::in_memory()));
    let out = sim.run_to_completion();
    let recorded = out
        .observer::<TraceRecorder>()
        .expect("recorder attached")
        .lines()
        .to_string();
    let tel = out.observer::<Telemetry>().expect("telemetry attached");
    assert!(tel.summary().total_jobs > 0, "telemetry observed the run");

    let path = format!("{}/{GOLDEN_PATH}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        // The sibling test owns regeneration; this one only compares.
        return;
    }
    let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("cannot read {path}: {e}\nregenerate with: UPDATE_GOLDEN=1 cargo test --test golden_trace")
    });
    assert!(
        recorded == golden,
        "attaching telemetry changed the recorded event stream"
    );
}

#[test]
fn golden_fixture_lines_are_well_formed_jsonl() {
    let path = format!("{}/{GOLDEN_PATH}", env!("CARGO_MANIFEST_DIR"));
    let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("cannot read {path}: {e}\nregenerate with: UPDATE_GOLDEN=1 cargo test --test golden_trace")
    });
    let mut last_t: u64 = 0;
    for (i, line) in golden.lines().enumerate() {
        assert!(
            line.starts_with("{\"t\":") && line.ends_with('}'),
            "line {} is not a JSON object: {line}",
            i + 1
        );
        assert!(
            line.contains("\"ev\":\""),
            "line {} has no event kind: {line}",
            i + 1
        );
        // Timestamps are non-decreasing: the recorder sees events in
        // simulation order.
        let t: u64 = line["{\"t\":".len()..]
            .split(',')
            .next()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("line {} has no numeric timestamp: {line}", i + 1));
        assert!(t >= last_t, "line {} goes back in time: {line}", i + 1);
        last_t = t;
    }
    assert_eq!(
        golden
            .lines()
            .next()
            .map(|l| l.contains("\"ev\":\"submit\"")),
        Some(true),
        "a trace must open with the first submission"
    );
}
