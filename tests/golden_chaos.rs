//! Golden-trace conformance for a *faulty* run: one fixed cell —
//! ResSusWaitUtil under the hardened resilience policy, with a moderate
//! stochastic fault model — must replay **byte-identically** against the
//! committed fixture. This pins the fault-injection schedule, eviction
//! ordering, backoff bookings, and blacklist windows: any drift in the
//! resilient-rescheduling path shows up as a one-line diff.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_chaos
//! ```
//!
//! and review the fixture diff like any other code change.

use netbatch::core::faults::{FaultModel, ResiliencePolicy};
use netbatch::core::observer::TraceRecorder;
use netbatch::core::policy::{InitialKind, StrategyKind};
use netbatch::core::simulator::{SimConfig, Simulator};
use netbatch::sim_engine::time::SimDuration;
use netbatch::workload::scenarios::ScenarioParams;
use std::fs;

/// Same scale as the fault-free golden cell: reviewable but non-trivial.
const GOLDEN_SCALE: f64 = 0.002;

/// Fixture path relative to the crate root.
const GOLDEN_PATH: &str = "tests/golden/chaos_hardened_rswu.jsonl";

/// Runs the hardened ResSusWaitUtil cell under a moderate fault model
/// (with the invariant checker riding along) and returns the JSONL stream.
fn record_chaos_hardened_rswu_on(use_reference_queue: bool) -> String {
    let params = ScenarioParams::normal_week(GOLDEN_SCALE);
    let site = params.build_site();
    let trace = params.generate_trace();
    let mut config = SimConfig::new(InitialKind::RoundRobin, StrategyKind::ResSusWaitUtil);
    config.check_invariants = true;
    config.use_reference_queue = use_reference_queue;
    config.fault_model = Some(
        FaultModel::new(
            SimDuration::from_hours(24),
            SimDuration::from_hours(4),
            SimDuration::from_days(7),
        )
        .with_pool_outages(1, SimDuration::from_hours(4))
        .with_flaky(0.05, 16),
    );
    config.resilience = ResiliencePolicy::hardened();
    let mut sim = Simulator::new(&site, trace.to_specs(), config);
    sim.attach_observer(Box::new(TraceRecorder::in_memory()));
    let out = sim.run_to_completion();
    out.observer::<TraceRecorder>()
        .expect("recorder attached")
        .lines()
        .to_string()
}

fn record_chaos_hardened_rswu() -> String {
    record_chaos_hardened_rswu_on(false)
}

#[test]
fn chaos_hardened_rswu_reference_heap_queue_matches_fixture() {
    // Chaos runs stress cancellation and same-minute event bursts harder
    // than the fault-free cell; replay on the reference binary-heap queue
    // and require the same byte-identical stream.
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        return; // the sibling test owns regeneration
    }
    let path = format!("{}/{GOLDEN_PATH}", env!("CARGO_MANIFEST_DIR"));
    let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("cannot read {path}: {e}\nregenerate with: UPDATE_GOLDEN=1 cargo test --test golden_chaos")
    });
    let on_heap = record_chaos_hardened_rswu_on(true);
    assert!(
        on_heap == golden,
        "reference-heap backend diverges from the chaos golden fixture — \
         the two event-queue implementations are no longer equivalent"
    );
}

#[test]
fn chaos_hardened_rswu_trace_matches_golden_fixture() {
    let path = format!("{}/{GOLDEN_PATH}", env!("CARGO_MANIFEST_DIR"));
    let recorded = record_chaos_hardened_rswu();

    // The fixture must actually exercise the fault path, or it pins
    // nothing new over the fault-free golden cell.
    for kind in [
        "machine_down",
        "machine_up",
        "failure_evict",
        "retry_backoff",
        "blacklist",
    ] {
        assert!(
            recorded.contains(&format!("\"ev\":\"{kind}\"")),
            "fixture run produced no `{kind}` events — fault model too mild"
        );
    }

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(&path, &recorded).expect("write golden fixture");
        println!("golden fixture regenerated at {path}");
        return;
    }

    let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("cannot read {path}: {e}\nregenerate with: UPDATE_GOLDEN=1 cargo test --test golden_chaos")
    });

    if recorded != golden {
        // Report the first diverging line before failing, so the diff is
        // readable without dumping two multi-thousand-line streams.
        for (i, (got, want)) in recorded.lines().zip(golden.lines()).enumerate() {
            assert_eq!(
                got,
                want,
                "trace diverges from golden fixture at line {}",
                i + 1
            );
        }
        panic!(
            "trace length diverges from golden fixture: {} vs {} lines \
             (first {} identical)",
            recorded.lines().count(),
            golden.lines().count(),
            recorded.lines().count().min(golden.lines().count())
        );
    }
}
