//! Golden-trace conformance for a *lifecycle* run: one fixed cell —
//! ResSusWaitUtil with health-aware scheduling, the hardened+evacuation
//! resilience policy and the standard machine-lifecycle model (scheduled
//! maintenance drains, one rolling-update wave, health cordons) — must
//! replay **byte-identically** against the committed fixture. This pins
//! the lifecycle plan (drain/kill/restore schedule), the evacuation
//! victim selection and ordering, and the health-weighted pool choices:
//! any drift in the drain/evacuation path shows up as a one-line diff.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_lifecycle
//! ```
//!
//! and review the fixture diff like any other code change.

use netbatch::core::faults::{LifecycleModel, ResiliencePolicy};
use netbatch::core::observer::TraceRecorder;
use netbatch::core::policy::{InitialKind, StrategyKind};
use netbatch::core::simulator::{SimConfig, Simulator};
use netbatch::sim_engine::time::SimDuration;
use netbatch::workload::scenarios::ScenarioParams;
use std::fs;

/// Same scale as the other golden cells: reviewable but non-trivial.
const GOLDEN_SCALE: f64 = 0.002;

/// Fixture path relative to the crate root.
const GOLDEN_PATH: &str = "tests/golden/lifecycle_drain_rswu.jsonl";

/// The recorded cell, shared with the cross-backend matrix
/// (`tests/golden_matrix.rs` replays the same fixture at shard counts
/// {1, 2, 4, 20} and on the reference heap queue).
fn lifecycle_config() -> SimConfig {
    let mut config = SimConfig::new(InitialKind::RoundRobin, StrategyKind::ResSusWaitUtil);
    config.check_invariants = true;
    config.lifecycle =
        Some(LifecycleModel::standard(SimDuration::from_days(7)).with_flaky(0.05, 16));
    config.resilience = ResiliencePolicy::hardened().with_evacuation();
    config.health_aware = true;
    config
}

fn record_lifecycle_drain_rswu_on(use_reference_queue: bool) -> String {
    let params = ScenarioParams::normal_week(GOLDEN_SCALE);
    let site = params.build_site();
    let trace = params.generate_trace();
    let mut config = lifecycle_config();
    config.use_reference_queue = use_reference_queue;
    let mut sim = Simulator::new(&site, trace.to_specs(), config);
    sim.attach_observer(Box::new(TraceRecorder::in_memory()));
    let out = sim.run_to_completion();
    out.observer::<TraceRecorder>()
        .expect("recorder attached")
        .lines()
        .to_string()
}

#[test]
fn lifecycle_drain_rswu_reference_heap_queue_matches_fixture() {
    // Drain windows cluster kill/restore/drain-end events on the same
    // minute; replay on the reference binary-heap queue and require the
    // same byte-identical stream.
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        return; // the sibling test owns regeneration
    }
    let path = format!("{}/{GOLDEN_PATH}", env!("CARGO_MANIFEST_DIR"));
    let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("cannot read {path}: {e}\nregenerate with: UPDATE_GOLDEN=1 cargo test --test golden_lifecycle")
    });
    let on_heap = record_lifecycle_drain_rswu_on(true);
    assert!(
        on_heap == golden,
        "reference-heap backend diverges from the lifecycle golden fixture — \
         the two event-queue implementations are no longer equivalent"
    );
}

#[test]
fn lifecycle_drain_rswu_trace_matches_golden_fixture() {
    let path = format!("{}/{GOLDEN_PATH}", env!("CARGO_MANIFEST_DIR"));
    let recorded = record_lifecycle_drain_rswu_on(false);

    // The fixture must actually exercise the lifecycle path, or it pins
    // nothing new over the chaos golden cell.
    for kind in [
        "machine_draining",
        "machine_undrained",
        "machine_down",
        "machine_up",
        "evacuation",
    ] {
        assert!(
            recorded.contains(&format!("\"ev\":\"{kind}\"")),
            "fixture run produced no `{kind}` events — lifecycle model too mild"
        );
    }

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(&path, &recorded).expect("write golden fixture");
        println!("golden fixture regenerated at {path}");
        return;
    }

    let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("cannot read {path}: {e}\nregenerate with: UPDATE_GOLDEN=1 cargo test --test golden_lifecycle")
    });

    if recorded != golden {
        for (i, (got, want)) in recorded.lines().zip(golden.lines()).enumerate() {
            assert_eq!(
                got,
                want,
                "trace diverges from golden fixture at line {}",
                i + 1
            );
        }
        panic!(
            "trace length diverges from golden fixture: {} vs {} lines",
            recorded.lines().count(),
            golden.lines().count(),
        );
    }
}
