//! Provenance integration tests: the [`SpanRecorder`]'s span trees must
//! reconcile with the [`Telemetry`] phase histograms and the
//! event-sourced [`ExperimentResult`] counters computed from the same
//! run — the three observers watch one event stream, so any disagreement
//! is a recording bug, not noise. The causal chains must also carry the
//! decision provenance the trace CLI surfaces: policy decisions with
//! their ranking inputs, fault outage ids, and evacuation windows.

use netbatch::cluster::ids::JobId;
use netbatch::core::experiment::ExperimentResult;
use netbatch::core::faults::{FaultModel, LifecycleModel, ResiliencePolicy};
use netbatch::core::observer::{ObsEvent, SimObserver};
use netbatch::core::policy::{InitialKind, StrategyKind};
use netbatch::core::provenance::{
    Cause, SpanRecorder, SPAN_BACKOFF, SPAN_MIGRATING, SPAN_QUEUE_WAIT, SPAN_RUNNING,
    SPAN_SUSPENDED,
};
use netbatch::core::simulator::{SimConfig, Simulator};
use netbatch::core::telemetry::{Telemetry, PHASE_QUEUE_WAIT, PHASE_SUSPENDED};
use netbatch::sim_engine::time::SimDuration;
use netbatch::workload::scenarios::ScenarioParams;

const TEST_SCALE: f64 = 0.02;

/// Runs one chaos-heavy cell (faults + lifecycle windows + hardened
/// resilience + proactive evacuation on the halved high-load site) with
/// both the [`Telemetry`] and [`SpanRecorder`] observers attached.
fn run_chaos(strategy: StrategyKind) -> (ExperimentResult, Vec<Box<dyn SimObserver>>) {
    let params = ScenarioParams::normal_week(TEST_SCALE);
    let site = params.build_site().halved();
    let trace = params.generate_trace();
    let initial = InitialKind::RoundRobin;
    let mut config = SimConfig::new(initial, strategy);
    config.telemetry = true;
    config.spans = true;
    config.seed = 7;
    config.fault_model = Some(FaultModel::new(
        SimDuration::from_hours(24),
        SimDuration::from_hours(6),
        SimDuration::from_days(8),
    ));
    config.resilience = ResiliencePolicy::hardened().with_evacuation();
    config.lifecycle = Some(
        LifecycleModel::new(SimDuration::from_days(8))
            .with_maintenance(SimDuration::from_hours(48), SimDuration::from_hours(2))
            .with_rolling(1, 0.25, SimDuration::from_hours(1)),
    );
    config.health_aware = true;
    let mut output = Simulator::new(&site, trace.to_specs(), config).run_to_completion();
    let observers = std::mem::take(&mut output.observers);
    let result = ExperimentResult::from_output(initial, strategy, output);
    (result, observers)
}

fn recorder(observers: &[Box<dyn SimObserver>]) -> &SpanRecorder {
    observers
        .iter()
        .find_map(|o| o.as_any().downcast_ref::<SpanRecorder>())
        .expect("span recorder attached via SimConfig")
}

fn telemetry(observers: &[Box<dyn SimObserver>]) -> &Telemetry {
    observers
        .iter()
        .find_map(|o| o.as_any().downcast_ref::<Telemetry>())
        .expect("telemetry attached via SimConfig")
}

#[test]
fn every_span_closes_and_the_jsonl_renders() {
    let (r, obs) = run_chaos(StrategyKind::ResSusWaitUtil);
    let rec = recorder(&obs);
    assert!(r.counters.suspensions > 0, "chaos run must suspend");
    assert_eq!(rec.open_count(), 0, "every segment closes by run end");
    let jsonl = rec.render_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(
        lines.len() as u64,
        1 + rec.decisions().len() as u64 + rec.span_count(),
        "header + one line per decision + one line per span"
    );
    for (i, line) in lines.iter().enumerate() {
        netbatch::metrics::json::parse(line)
            .unwrap_or_else(|e| panic!("line {} is not valid JSON: {e}", i + 1));
    }
}

#[test]
fn span_trees_reconcile_with_telemetry_phase_histograms() {
    let (_, obs) = run_chaos(StrategyKind::ResSusWaitUtil);
    let (rec, tel) = (recorder(&obs), telemetry(&obs));
    // Queue-wait and suspended intervals are recorded independently by
    // both observers off the same transitions: counts and total minutes
    // must match exactly (all durations are integral minutes, so the
    // histogram sums are exact).
    let queue = tel.spans().phase(PHASE_QUEUE_WAIT).expect("jobs queued");
    assert_eq!(rec.segment_count(SPAN_QUEUE_WAIT), queue.count());
    assert_eq!(rec.phase_minutes(SPAN_QUEUE_WAIT) as f64, queue.sum());
    let susp = tel.spans().phase(PHASE_SUSPENDED).expect("jobs suspended");
    assert_eq!(rec.segment_count(SPAN_SUSPENDED), susp.count());
    assert_eq!(rec.phase_minutes(SPAN_SUSPENDED) as f64, susp.sum());
}

#[test]
fn segment_counts_reconcile_with_run_counters() {
    let (r, obs) = run_chaos(StrategyKind::ResSusWaitUtil);
    let (rec, tel) = (recorder(&obs), telemetry(&obs));
    let counts = tel.event_counts();
    let get = |kind: &str| counts.get(kind).copied().unwrap_or(0);
    assert_eq!(rec.segment_count(SPAN_SUSPENDED), r.counters.suspensions);
    assert_eq!(rec.segment_count(SPAN_QUEUE_WAIT), get("enqueue"));
    assert_eq!(
        rec.segment_count(SPAN_RUNNING),
        get("dispatch") + get("resume"),
        "one running segment per dispatch or resume"
    );
    assert_eq!(rec.segment_count(SPAN_BACKOFF), get("retry_backoff"));
    let evac_decisions = rec
        .decisions()
        .iter()
        .filter(|(_, ev)| matches!(ev, ObsEvent::EvacAudit { .. }))
        .count() as u64;
    assert_eq!(evac_decisions, r.counters.evacuations);
    assert!(r.counters.failure_evictions > 0, "chaos run must fault");

    // Migrations get their own transit segment, one per move.
    let (rm, obs) = run_chaos(StrategyKind::MigrateSusUtil);
    let rec = recorder(&obs);
    assert!(rm.counters.migrations > 0, "migration run must migrate");
    assert_eq!(rec.segment_count(SPAN_MIGRATING), rm.counters.migrations);
}

#[test]
fn causal_chains_carry_policy_fault_and_evacuation_provenance() {
    let (r, obs) = run_chaos(StrategyKind::ResSusWaitUtil);
    let rec = recorder(&obs);
    assert!(r.counters.evacuations > 0, "chaos run must evacuate");
    let mut saw = (false, false, false); // (policy, fault, evacuation)
    for j in 0..rec.job_count() {
        for seg in rec.segments(JobId(j as u64)) {
            match seg.cause {
                Cause::Policy {
                    candidates, target, ..
                } => {
                    assert!(candidates > 0, "a policy move ranked candidates");
                    assert!(target.is_some(), "a policy-caused segment names a target");
                    saw.0 = true;
                }
                Cause::Fault { outage, .. } => {
                    // The outage id must resolve to a recorded fault
                    // decision with the same id.
                    assert!(
                        rec.decisions().iter().any(|(_, ev)| matches!(
                            ev,
                            ObsEvent::FaultAudit { outage: o, .. } if *o == outage
                        )),
                        "fault cause {outage} has no matching fault decision"
                    );
                    saw.1 = true;
                }
                Cause::Evacuation { .. } => saw.2 = true,
                _ => {}
            }
        }
    }
    assert!(saw.0, "no segment carried a policy cause");
    assert!(saw.1, "no segment carried a fault cause");
    assert!(saw.2, "no segment carried an evacuation cause");
}
