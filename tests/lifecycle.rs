//! Machine-lifecycle semantics, end to end through the simulator:
//!
//! 1. a draining machine accepts no new work but lets its residents
//!    finish in place;
//! 2. proactive evacuation moves doomed jobs off a draining machine
//!    *before* the kill deadline — and only when the policy enables it;
//! 3. the lifecycle-off configuration is byte-identical to the baseline
//!    (an inert model that schedules nothing must not perturb a
//!    health-blind run either);
//! 4. (regression) a fault interval starting exactly at the model horizon
//!    is dropped at seeding, never emitting a dangling `machine_down`
//!    that would break the invariant checker's alternation rule;
//! 5. the degradation gate: under a heavy lifecycle tier, health-aware
//!    scheduling with evacuation must evacuate and must not complete jobs
//!    slower than the health-blind baseline — a regression that silently
//!    disables evacuation fails this test (and CI runs it).

use netbatch::cluster::ids::{MachineId, PoolId};
use netbatch::cluster::pool::PoolConfig;
use netbatch::core::experiment::{Experiment, ExperimentResult};
use netbatch::core::faults::{
    FaultModel, LifecycleKind, LifecycleModel, LifecycleWindow, ResiliencePolicy,
};
use netbatch::core::observer::TraceRecorder;
use netbatch::core::policy::{InitialKind, StrategyKind};
use netbatch::core::simulator::{MachineFailure, SimConfig, SimOutput, Simulator};
use netbatch::sim_engine::time::{SimDuration, SimTime};
use netbatch::workload::scenarios::SiteSpec;
use netbatch::workload::trace::{Trace, TraceRecord};

fn site(pools: u16, machines: u32, cores: u32) -> SiteSpec {
    SiteSpec {
        pools: (0..pools)
            .map(|p| PoolConfig::uniform(PoolId(p), machines, cores, 8192))
            .collect(),
    }
}

fn rec(submit: u64, runtime: u64) -> TraceRecord {
    TraceRecord {
        submit_minute: submit,
        runtime_minutes: runtime,
        cores: 1,
        memory_mb: 512,
        priority: 0,
        affinity: vec![],
        task: None,
    }
}

fn window(
    pool: u16,
    machine: u32,
    kind: LifecycleKind,
    drain_from: u64,
    down_from: Option<u64>,
    until: u64,
) -> LifecycleWindow {
    LifecycleWindow {
        pool: PoolId(pool),
        machine: MachineId(machine),
        kind,
        drain_from: SimTime::from_minutes(drain_from),
        down_from: down_from.map(SimTime::from_minutes),
        until: SimTime::from_minutes(until),
    }
}

fn run(records: Vec<TraceRecord>, config: SimConfig, site_spec: SiteSpec) -> SimOutput {
    let trace = Trace::from_records(records);
    let mut sim = Simulator::new(&site_spec, trace.to_specs(), config);
    sim.attach_observer(Box::new(TraceRecorder::in_memory()));
    sim.run_to_completion()
}

fn trace_of(out: &SimOutput) -> String {
    out.observer::<TraceRecorder>()
        .expect("recorder attached")
        .lines()
        .to_string()
}

fn kind_count(out: &SimOutput, kind: &str) -> u64 {
    out.observer::<TraceRecorder>()
        .expect("recorder attached")
        .kind_counts()
        .get(kind)
        .copied()
        .unwrap_or(0)
}

/// Completion minute of the `n`-th `complete` event in the trace.
fn complete_minute(out: &SimOutput, n: usize) -> u64 {
    let lines = trace_of(out);
    let line = lines
        .lines()
        .filter(|l| l.contains("\"ev\":\"complete\""))
        .nth(n)
        .expect("enough complete events");
    line["{\"t\":".len()..]
        .split(',')
        .next()
        .and_then(|s| s.parse().ok())
        .expect("complete line has a timestamp")
}

#[test]
fn draining_machine_accepts_no_new_work_but_residents_finish() {
    // One machine, cordoned [10, 200): the job running since t=0 finishes
    // at 100 in place; a job arriving at t=20 can only dispatch when the
    // cordon lifts at 200.
    let mut config = SimConfig::new(InitialKind::RoundRobin, StrategyKind::NoRes);
    config.check_invariants = true;
    config.drains = vec![window(0, 0, LifecycleKind::Cordoned, 10, None, 200)];
    let out = run(vec![rec(0, 100), rec(20, 10)], config, site(1, 1, 2));
    assert_eq!(out.counters.completed, 2);
    assert_eq!(kind_count(&out, "machine_draining"), 1);
    assert_eq!(kind_count(&out, "machine_undrained"), 1);
    assert_eq!(kind_count(&out, "evacuation"), 0, "cordons never evacuate");
    // Resident finishes in place mid-drain; the newcomer waits it out.
    assert_eq!(complete_minute(&out, 0), 100);
    assert_eq!(complete_minute(&out, 1), 210);
}

#[test]
fn evacuation_moves_doomed_job_before_the_kill() {
    // Pool 0's only machine drains at 10 and dies at 40. The 100-minute
    // job cannot beat the deadline, so with evacuation enabled it is
    // rescheduled at drain start — before the kill — and finishes on
    // pool 1 instead of being failure-evicted at 40.
    let mut config = SimConfig::new(InitialKind::RoundRobin, StrategyKind::NoRes);
    config.check_invariants = true;
    config.resilience = ResiliencePolicy::hardened().with_evacuation();
    config.drains = vec![window(0, 0, LifecycleKind::Maintenance, 10, Some(40), 80)];
    let out = run(vec![rec(0, 100)], config, site(2, 1, 2));
    assert_eq!(out.counters.completed, 1);
    assert_eq!(out.counters.evacuations, 1);
    assert_eq!(kind_count(&out, "evacuation"), 1);
    assert_eq!(
        kind_count(&out, "failure_evict"),
        0,
        "the job must move before the kill, not die in it"
    );
}

#[test]
fn evacuation_requires_the_policy_switch() {
    // Same drain, evacuation off: the job rides the machine into the kill
    // and is failure-evicted there instead.
    let mut config = SimConfig::new(InitialKind::RoundRobin, StrategyKind::NoRes);
    config.check_invariants = true;
    config.resilience = ResiliencePolicy::hardened();
    config.drains = vec![window(0, 0, LifecycleKind::Maintenance, 10, Some(40), 80)];
    let out = run(vec![rec(0, 100)], config, site(2, 1, 2));
    assert_eq!(out.counters.completed, 1);
    assert_eq!(out.counters.evacuations, 0);
    assert_eq!(kind_count(&out, "evacuation"), 0);
    assert_eq!(kind_count(&out, "failure_evict"), 1);
}

#[test]
fn jobs_that_beat_the_deadline_are_left_in_place() {
    // The job completes at 30, before the kill at 40: evacuating it would
    // discard progress for nothing, so it must finish where it is.
    let mut config = SimConfig::new(InitialKind::RoundRobin, StrategyKind::NoRes);
    config.check_invariants = true;
    config.resilience = ResiliencePolicy::hardened().with_evacuation();
    config.drains = vec![window(0, 0, LifecycleKind::Maintenance, 10, Some(40), 80)];
    let out = run(vec![rec(0, 30)], config, site(2, 1, 2));
    assert_eq!(out.counters.completed, 1);
    assert_eq!(out.counters.evacuations, 0);
    assert_eq!(complete_minute(&out, 0), 30);
}

#[test]
fn inert_lifecycle_model_is_byte_identical_when_health_blind() {
    // An inert model schedules no windows but still scores machine health
    // from probes. With health-aware scheduling off, nothing may consult
    // those scores: the trace must be byte-identical to no model at all.
    let records: Vec<TraceRecord> = (0..30).map(|i| rec(i * 7, 40 + i % 11)).collect();
    let base = SimConfig::new(InitialKind::UtilizationBased, StrategyKind::ResSusWaitUtil);
    let mut with_model = base.clone();
    with_model.lifecycle = Some(LifecycleModel::new(SimDuration::from_minutes(3000)));
    let a = run(records.clone(), base, site(3, 2, 2));
    let b = run(records, with_model, site(3, 2, 2));
    assert_eq!(
        trace_of(&a),
        trace_of(&b),
        "an inert lifecycle model perturbed a health-blind run"
    );
}

#[test]
fn outage_starting_at_the_horizon_is_dropped() {
    // Regression: an interval starting exactly at the fault horizon used
    // to seed a dangling `machine_down` with no matching repair —
    // breaking the invariant checker's down/up alternation on the next
    // run and leaving the machine dead forever. The merged plan is
    // clamped, so the event never seeds.
    let mut config = SimConfig::new(InitialKind::RoundRobin, StrategyKind::NoRes);
    config.check_invariants = true;
    // A fault model whose MTBF is far beyond the horizon generates no
    // outages of its own; its horizon (100) is the clamp boundary.
    config.fault_model = Some(FaultModel::new(
        SimDuration::from_minutes(1_000_000_000),
        SimDuration::from_minutes(30),
        SimDuration::from_minutes(100),
    ));
    config.failures = vec![MachineFailure {
        pool: PoolId(0),
        machine: MachineId(0),
        at: SimTime::from_minutes(100),
        down_for: None,
    }];
    let out = run(vec![rec(0, 20)], config, site(1, 1, 2));
    assert_eq!(
        kind_count(&out, "machine_down"),
        0,
        "outage at the horizon must be clamped away, not seeded dangling"
    );
    assert_eq!(out.counters.completed, 1);
}

/// The CI degradation gate: under a heavy lifecycle tier the health-aware
/// configuration must actually evacuate, its evacuation journal must
/// reconcile with the run counters, and its mean completion time must not
/// be worse than the health-blind baseline's.
#[test]
fn health_aware_beats_health_blind_under_heavy_lifecycle() {
    let heavy = |aware: bool| -> (ExperimentResult, u64) {
        let records: Vec<TraceRecord> = (0..160).map(|i| rec(i * 11, 120 + i % 180)).collect();
        let mut config =
            SimConfig::new(InitialKind::UtilizationBased, StrategyKind::ResSusWaitUtil);
        config.seed = 7;
        config.check_invariants = true;
        config.restart_overhead = SimDuration::from_minutes(10);
        // Flaky machines both fail probes (low health) and actually fail
        // (fault model, same flaky fraction over the same substream):
        // health-blind routing keeps feeding them, health-aware avoids
        // them — that correlation is what the paper's health score buys.
        config.fault_model = Some(
            FaultModel::new(
                SimDuration::from_minutes(1500),
                SimDuration::from_minutes(200),
                SimDuration::from_minutes(4000),
            )
            .with_flaky(0.3, 16),
        );
        config.lifecycle = Some(
            LifecycleModel::new(SimDuration::from_minutes(4000))
                .with_drain_lead(SimDuration::from_minutes(120))
                .with_maintenance(
                    SimDuration::from_minutes(600),
                    SimDuration::from_minutes(180),
                )
                .with_rolling(2, 0.5, SimDuration::from_minutes(120))
                .with_cordon(600, SimDuration::from_minutes(800))
                .with_flaky(0.3, 16),
        );
        config.health_aware = aware;
        config.resilience = if aware {
            ResiliencePolicy::hardened().with_evacuation()
        } else {
            ResiliencePolicy::hardened()
        };
        let trace = Trace::from_records(records);
        let site_spec = site(4, 3, 2);
        let mut sim = Simulator::new(&site_spec, trace.to_specs(), config.clone());
        sim.attach_observer(Box::new(TraceRecorder::in_memory()));
        let out = sim.run_to_completion();
        let journal_evacs = kind_count(&out, "evacuation");
        let r = ExperimentResult::from_output(config.initial, config.strategy, out);
        (r, journal_evacs)
    };
    let (aware, aware_journal) = heavy(true);
    let (blind, blind_journal) = heavy(false);
    assert!(
        aware.evacuations() > 0,
        "heavy lifecycle tier produced no evacuations — the proactive path is dead"
    );
    assert_eq!(
        aware.evacuations(),
        aware_journal,
        "evacuation journal does not reconcile with the run counter"
    );
    assert_eq!(blind.evacuations(), 0);
    assert_eq!(blind_journal, 0);
    assert_eq!(aware.total_jobs, blind.total_jobs);
    assert!(
        aware.avg_ct_all <= blind.avg_ct_all,
        "health-aware scheduling degraded mean completion time: {} > {} min",
        aware.avg_ct_all,
        blind.avg_ct_all
    );
}

/// `Experiment::run` carries evacuation counts through to the result —
/// the front door the bench harness and EXPERIMENTS.md tables use.
#[test]
fn experiment_front_door_reports_evacuations() {
    let mut config = SimConfig::new(InitialKind::RoundRobin, StrategyKind::NoRes);
    config.resilience = ResiliencePolicy::hardened().with_evacuation();
    config.drains = vec![window(0, 0, LifecycleKind::Maintenance, 10, Some(40), 80)];
    let trace = Trace::from_records(vec![rec(0, 100)]);
    let r = Experiment::new(site(2, 1, 2), trace, config).run();
    assert_eq!(r.evacuations(), 1);
    assert_eq!(r.total_jobs, 1);
}
