//! Cross-backend golden matrix: every committed golden fixture must
//! replay **byte-identically** on the serial reference backend and on the
//! sharded backend at shards ∈ {1, 2, 4, NUM_POOLS}.
//!
//! This is the conformance contract of the sharded kernel: shard count is
//! an execution detail, never an observable. The matrix covers the
//! fault-free fast-class cell (where sharding actually fans submissions
//! and completions out to workers), the hardened chaos cell (which falls
//! back to inline execution per event and must *still* be identical
//! through the same coordinator), and the telemetry-attached variant
//! (exercising the replay/settle observer seam end to end).

use netbatch::core::faults::{FaultModel, LifecycleModel, ResiliencePolicy};
use netbatch::core::observer::TraceRecorder;
use netbatch::core::policy::{InitialKind, StrategyKind};
use netbatch::core::simulator::{Backend, SimConfig, Simulator};
use netbatch::sim_engine::time::SimDuration;
use netbatch::workload::scenarios::{ScenarioParams, POOL_COUNT};
use std::fs;

/// Same scale as the fixtures were recorded at.
const GOLDEN_SCALE: f64 = 0.002;

/// The shard counts every fixture must replay identically under.
fn shard_matrix() -> [usize; 4] {
    [1, 2, 4, POOL_COUNT as usize]
}

fn read_fixture(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// Runs one configured cell with a trace recorder attached and returns
/// the JSONL stream.
fn record(mut config: SimConfig) -> String {
    let params = ScenarioParams::normal_week(GOLDEN_SCALE);
    let site = params.build_site();
    let trace = params.generate_trace();
    config.check_invariants = true;
    let mut sim = Simulator::new(&site, trace.to_specs(), config);
    sim.attach_observer(Box::new(TraceRecorder::in_memory()));
    let out = sim.run_to_completion();
    out.observer::<TraceRecorder>()
        .expect("recorder attached")
        .lines()
        .to_string()
}

fn table1_config(backend: Backend) -> SimConfig {
    let mut config = SimConfig::new(InitialKind::RoundRobin, StrategyKind::NoRes);
    config.backend = backend;
    config
}

fn chaos_config(backend: Backend) -> SimConfig {
    let mut config = SimConfig::new(InitialKind::RoundRobin, StrategyKind::ResSusWaitUtil);
    config.fault_model = Some(
        FaultModel::new(
            SimDuration::from_hours(24),
            SimDuration::from_hours(4),
            SimDuration::from_days(7),
        )
        .with_pool_outages(1, SimDuration::from_hours(4))
        .with_flaky(0.05, 16),
    );
    config.resilience = ResiliencePolicy::hardened();
    config.backend = backend;
    config
}

fn lifecycle_config(backend: Backend) -> SimConfig {
    // Must stay in lockstep with tests/golden_lifecycle.rs, which owns
    // the fixture's regeneration.
    let mut config = SimConfig::new(InitialKind::RoundRobin, StrategyKind::ResSusWaitUtil);
    config.lifecycle =
        Some(LifecycleModel::standard(SimDuration::from_days(7)).with_flaky(0.05, 16));
    config.resilience = ResiliencePolicy::hardened().with_evacuation();
    config.health_aware = true;
    config.backend = backend;
    config
}

/// Asserts `got` equals the fixture, reporting the first diverging line
/// rather than dumping two multi-thousand-line streams.
fn assert_matches(golden: &str, got: &str, label: &str) {
    if got == golden {
        return;
    }
    for (i, (g, w)) in got.lines().zip(golden.lines()).enumerate() {
        assert_eq!(
            g,
            w,
            "[{label}] trace diverges from fixture at line {}",
            i + 1
        );
    }
    panic!(
        "[{label}] trace length diverges: {} vs {} fixture lines",
        got.lines().count(),
        golden.lines().count()
    );
}

#[test]
fn table1_fixture_is_shard_count_invariant() {
    let golden = read_fixture("table1_nores_rr.jsonl");
    assert_matches(&golden, &record(table1_config(Backend::Serial)), "serial");
    for shards in shard_matrix() {
        let got = record(table1_config(Backend::Sharded { shards }));
        assert_matches(&golden, &got, &format!("sharded x{shards}"));
    }
}

#[test]
fn chaos_fixture_is_shard_count_invariant() {
    let golden = read_fixture("chaos_hardened_rswu.jsonl");
    assert_matches(&golden, &record(chaos_config(Backend::Serial)), "serial");
    for shards in shard_matrix() {
        let got = record(chaos_config(Backend::Sharded { shards }));
        assert_matches(&golden, &got, &format!("sharded x{shards}"));
    }
}

#[test]
fn lifecycle_fixture_is_shard_count_invariant() {
    // Lifecycle drains and evacuations run inline on the coordinator
    // (classified to no shard), so shard count must stay unobservable
    // even while machines drain, die, evacuate and re-open mid-run.
    let golden = read_fixture("lifecycle_drain_rswu.jsonl");
    assert_matches(
        &golden,
        &record(lifecycle_config(Backend::Serial)),
        "serial",
    );
    for shards in shard_matrix() {
        let got = record(lifecycle_config(Backend::Sharded { shards }));
        assert_matches(&golden, &got, &format!("lifecycle sharded x{shards}"));
    }
}

#[test]
fn lifecycle_fixture_on_reference_heap_queue_is_backend_invariant() {
    // The queue axis composes with the backend axis under lifecycle
    // churn too: same fixture on the reference binary-heap queue, both
    // serial and sharded.
    let golden = read_fixture("lifecycle_drain_rswu.jsonl");
    for (backend, label) in [
        (Backend::Serial, "serial on reference heap"),
        (
            Backend::Sharded { shards: 4 },
            "sharded x4 on reference heap",
        ),
    ] {
        let mut config = lifecycle_config(backend);
        config.use_reference_queue = true;
        assert_matches(&golden, &record(config), label);
    }
}

#[test]
fn telemetry_attached_trace_is_shard_count_invariant() {
    // Telemetry riding along must not perturb the recorded stream on any
    // backend (observer independence), and the telemetry observer itself
    // must survive the replay/settle delivery path.
    let golden = read_fixture("table1_nores_rr.jsonl");
    for shards in shard_matrix() {
        let mut config = table1_config(Backend::Sharded { shards });
        config.telemetry = true;
        assert_matches(&golden, &record(config), &format!("telemetry x{shards}"));
    }
}

#[test]
fn sharded_backend_on_reference_heap_queue_matches_fixture() {
    // Orthogonality: the backend switch composes with the event-queue
    // switch. One cell is enough — both axes are exhaustively covered by
    // their own suites.
    let golden = read_fixture("table1_nores_rr.jsonl");
    let mut config = table1_config(Backend::Sharded { shards: 4 });
    config.use_reference_queue = true;
    assert_matches(&golden, &record(config), "sharded x4 on reference heap");
}
