//! Same-seed determinism across the whole simulator: two runs of an
//! identical scenario must produce **bit-identical** [`SimOutput`]s — and
//! byte-identical recorded event streams — for every rescheduling
//! strategy. This pins down that the availability-index dispatch path
//! introduces no iteration-order or hash-map nondeterminism,
//! complementing the per-dispatch differential check in
//! `netbatch_cluster::pool`.

use netbatch::core::observer::TraceRecorder;
use netbatch::core::policy::{InitialKind, StrategyKind};
use netbatch::core::simulator::{SimConfig, SimOutput, Simulator};
use netbatch::workload::scenarios::ScenarioParams;

const TEST_SCALE: f64 = 0.02;

fn run_once(strategy: StrategyKind) -> SimOutput {
    let params = ScenarioParams::normal_week(TEST_SCALE);
    let site = params.build_site();
    let trace = params.generate_trace();
    let mut sim = Simulator::new(
        &site,
        trace.to_specs(),
        SimConfig::new(InitialKind::RoundRobin, strategy),
    );
    sim.attach_observer(Box::new(TraceRecorder::in_memory()));
    sim.run_to_completion()
}

fn trace_of(out: &SimOutput) -> &str {
    out.observer::<TraceRecorder>()
        .expect("recorder attached")
        .lines()
}

#[test]
fn sim_output_is_bit_identical_across_runs_for_all_strategies() {
    for strategy in [
        StrategyKind::NoRes,
        StrategyKind::ResSusUtil,
        StrategyKind::ResSusRand,
        StrategyKind::ResSusWaitUtil,
        StrategyKind::ResSusWaitRand,
    ] {
        let a = run_once(strategy);
        let b = run_once(strategy);
        // Field-level checks first for readable failures…
        assert_eq!(a.counters, b.counters, "{strategy:?}: counters diverged");
        assert_eq!(a.end_time, b.end_time, "{strategy:?}: end time diverged");
        assert_eq!(
            a.pool_stats, b.pool_stats,
            "{strategy:?}: pool stats diverged"
        );
        assert_eq!(
            a.jobs.len(),
            b.jobs.len(),
            "{strategy:?}: job counts diverged"
        );
        // …then the exhaustive structural comparison over every record and
        // series sample…
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "{strategy:?}: SimOutput not bit-identical across same-seed runs"
        );
        // …and finally the full recorded event stream, byte for byte: the
        // strongest determinism statement the simulator can make, since it
        // covers the order and payload of every lifecycle transition, not
        // just the end-of-run aggregates.
        assert_eq!(
            trace_of(&a),
            trace_of(&b),
            "{strategy:?}: recorded event streams diverged across same-seed runs"
        );
        assert!(
            !trace_of(&a).is_empty(),
            "{strategy:?}: recorder saw no events"
        );
        assert!(
            a.counters.completed > 0,
            "{strategy:?}: scenario ran no jobs"
        );
    }
}
