//! Property-based integration tests: randomized small workloads on small
//! sites, checking the accounting identities every finished run must
//! satisfy regardless of policy.

use netbatch::cluster::ids::PoolId;
use netbatch::cluster::pool::PoolConfig;
use netbatch::core::policy::{InitialKind, StrategyKind};
use netbatch::core::simulator::{SimConfig, Simulator};
use netbatch::sim_engine::time::SimDuration;
use netbatch::workload::scenarios::SiteSpec;
use netbatch::workload::trace::{Trace, TraceRecord};
use proptest::prelude::*;

fn small_site(pools: u16, machines: u32, cores: u32) -> SiteSpec {
    SiteSpec {
        pools: (0..pools)
            .map(|p| PoolConfig::uniform(PoolId(p), machines, cores, 8192))
            .collect(),
    }
}

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (
        0u64..2000,                                // submit minute
        1u64..500,                                 // runtime
        1u32..3,                                   // cores
        prop::sample::select(vec![0u8, 0, 0, 10]), // mostly low, some high
        prop::bool::ANY,                           // restricted affinity?
    )
        .prop_map(
            |(submit, runtime, cores, priority, restricted)| TraceRecord {
                submit_minute: submit,
                runtime_minutes: runtime,
                cores,
                memory_mb: 512,
                priority,
                affinity: if restricted && priority >= 10 {
                    vec![0]
                } else {
                    vec![]
                },
                task: None,
            },
        )
}

fn arb_strategy() -> impl Strategy<Value = StrategyKind> {
    prop::sample::select(vec![
        StrategyKind::NoRes,
        StrategyKind::ResSusUtil,
        StrategyKind::ResSusRand,
        StrategyKind::ResSusWaitUtil,
        StrategyKind::ResSusWaitRand,
        StrategyKind::ResSusQueue,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every job completes and its lifecycle segments tile its lifetime:
    /// completion span == wait + suspend + run (progress discarded by
    /// restarts is part of run time).
    #[test]
    fn prop_lifecycle_tiles(
        records in prop::collection::vec(arb_record(), 1..60),
        strategy in arb_strategy(),
        seed in 0u64..1000,
    ) {
        let site = small_site(3, 2, 2);
        let trace = Trace::from_records(records);
        let mut config = SimConfig::new(InitialKind::RoundRobin, strategy);
        config.seed = seed;
        let sim = Simulator::new(&site, trace.to_specs(), config);
        let out = sim.run_to_completion();
        prop_assert_eq!(out.counters.completed as usize, out.jobs.len());
        for job in &out.jobs {
            prop_assert!(job.is_completed());
            let span = job
                .completed_at()
                .expect("completed")
                .since(job.spec().submit_time);
            let tiled = job.wait_time() + job.suspend_time() + job.run_time();
            prop_assert_eq!(
                span, tiled,
                "job {} span {:?} != wait+suspend+run {:?}",
                job.id(), span, tiled
            );
            // Run time covers at least one full execution of the job.
            prop_assert!(job.run_time() >= SimDuration::from_minutes(1));
            // Rescheduling waste never exceeds run time plus overhead
            // (all waste is discarded run time when overhead is zero).
            prop_assert!(job.resched_waste() <= job.run_time());
            // A job that was never suspended and never restarted has no
            // suspend time.
            if !job.was_suspended() {
                prop_assert_eq!(job.suspend_time(), SimDuration::ZERO);
            }
        }
    }

    /// The event count is finite and bounded: no policy may livelock even
    /// with aggressive wait rescheduling on an overloaded site.
    #[test]
    fn prop_no_event_storms(
        records in prop::collection::vec(arb_record(), 1..40),
        strategy in arb_strategy(),
    ) {
        // A deliberately tiny site: two pools of one 2-core machine each
        // forces deep queues and maximal churn.
        let site = small_site(2, 1, 2);
        let trace = Trace::from_records(records);
        let n = trace.len() as u64;
        let sim = Simulator::new(&site, trace.to_specs(), SimConfig::new(InitialKind::RoundRobin, strategy));
        let out = sim.run_to_completion();
        prop_assert_eq!(out.counters.completed, n);
        // Generous bound: submissions + completions + restarts + wait
        // checks should stay polynomial, not explode.
        let total_runtime: u64 = out.jobs.iter().map(|j| j.run_time().as_minutes()).sum();
        let bound = 10 * n + 4 * out.counters.suspensions + total_runtime / 15 + 1000;
        prop_assert!(
            out.counters.events <= bound,
            "events {} exceed bound {bound}",
            out.counters.events
        );
    }

    /// Suspend-rate and metric sanity for arbitrary workloads.
    #[test]
    fn prop_metric_ranges(
        records in prop::collection::vec(arb_record(), 1..60),
        strategy in arb_strategy(),
    ) {
        let site = small_site(3, 2, 2);
        let trace = Trace::from_records(records);
        let exp = netbatch::core::experiment::Experiment::new(
            site,
            trace,
            SimConfig::new(InitialKind::RoundRobin, strategy),
        );
        let r = exp.run();
        prop_assert!((0.0..=1.0).contains(&r.suspend_rate));
        prop_assert!(r.avg_ct_all >= 0.0);
        prop_assert!(r.avg_ct_suspended >= r.avg_st, "CT includes suspension");
        prop_assert!(r.avg_wct() <= r.avg_ct_all, "waste is part of completion time");
    }
}

/// A historical shrunk failure (one machine-filling 2-core job under
/// NoRes), pinned as an explicit test rather than as persisted generator
/// state: `.proptest-regressions` files are not committed — a shrunk
/// case worth keeping gets promoted to a named regression test like this
/// one, and CI fails if a regressions file ever drifts into the tree.
#[test]
fn regression_single_machine_filling_job_completes() {
    let site = small_site(3, 2, 2);
    let trace = Trace::from_records(vec![TraceRecord {
        submit_minute: 0,
        runtime_minutes: 1,
        cores: 2,
        memory_mb: 512,
        priority: 0,
        affinity: vec![],
        task: None,
    }]);
    let mut config = SimConfig::new(InitialKind::RoundRobin, StrategyKind::NoRes);
    config.check_invariants = true;
    let out = Simulator::new(&site, trace.to_specs(), config).run_to_completion();
    assert_eq!(out.counters.completed, 1);
    let job = &out.jobs[0];
    assert!(job.is_completed());
    assert_eq!(job.run_time(), SimDuration::from_minutes(1));
}
