//! Offline trace analysis, mirroring the paper's §2 trace-driven study:
//! generate (or load) a trace, characterize its composition, arrival
//! burstiness and offered load, export it to CSV, and read it back.
//!
//! Run with `cargo run --release --example trace_analysis [path.csv]` —
//! with a path argument the trace is also written there.

use netbatch::metrics::table::Table;
use netbatch::sim_engine::time::SimDuration;
use netbatch::workload::analysis::{arrival_series, burstiness, TraceAnalysis};
use netbatch::workload::io::{read_csv, write_csv};
use netbatch::workload::scenarios::ScenarioParams;

fn main() {
    let params = ScenarioParams::normal_week(0.1);
    let trace = params.generate_trace();
    let site = params.build_site();
    let analysis = TraceAnalysis::of(&trace);

    let mut t = Table::new(["property", "value"]);
    t.row(["jobs", &analysis.jobs.to_string()]);
    t.row([
        "high-priority jobs",
        &format!(
            "{} ({:.1}%)",
            analysis.high_jobs,
            analysis.high_fraction() * 100.0
        ),
    ]);
    t.row([
        "pool-restricted jobs",
        &analysis.restricted_jobs.to_string(),
    ]);
    t.row([
        "mean runtime (min)",
        &format!("{:.0}", analysis.mean_runtime),
    ]);
    t.row([
        "median runtime (min)",
        &format!("{:.0}", analysis.median_runtime),
    ]);
    t.row(["p99 runtime (min)", &format!("{:.0}", analysis.p99_runtime)]);
    t.row(["max runtime (min)", &format!("{:.0}", analysis.max_runtime)]);
    t.row(["mean cores", &format!("{:.2}", analysis.mean_cores)]);
    t.row(["span (min)", &analysis.span_minutes.to_string()]);
    t.row([
        "offered utilization",
        &format!(
            "{:.1}%",
            analysis.offered_utilization(site.total_cores()) * 100.0
        ),
    ]);
    print!("{t}");

    // Burstiness: high-priority streams should be much burstier than the
    // Poisson background (the paper's §2.3 observation).
    let bucket = SimDuration::HOUR;
    println!(
        "\narrival burstiness (CV of hourly counts): all {:.2}",
        burstiness(&trace, bucket)
    );
    let series = arrival_series(&trace, SimDuration::from_minutes(500));
    let max = series.samples().iter().map(|&(_, v)| v).fold(1.0, f64::max);
    println!("\narrivals per ~8h interval:");
    for &(t, v) in series.samples() {
        println!(
            "  t+{:>6}m {:>5.0} {}",
            t.as_minutes(),
            v,
            "#".repeat(((v / max) * 50.0) as usize)
        );
    }

    // Round-trip through the CSV codec (the interface for real traces).
    let mut buf = Vec::new();
    write_csv(&mut buf, &trace).expect("serialize trace");
    let back = read_csv(buf.as_slice()).expect("parse trace");
    assert_eq!(back, trace);
    println!(
        "\nCSV round-trip: {} bytes, {} records — OK",
        buf.len(),
        back.len()
    );
    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, &buf).expect("write trace file");
        println!("trace written to {path}");
    }
}
