//! Sweep every rescheduling strategy against both initial schedulers on
//! one scenario — the full policy matrix, including the shortest-queue
//! extension the paper's analysis suggests.
//!
//! Run with `cargo run --release --example policy_shootout [scale]`.

use netbatch::core::experiment::Experiment;
use netbatch::core::policy::{InitialKind, StrategyKind};
use netbatch::core::simulator::SimConfig;
use netbatch::metrics::table::Table;
use netbatch::workload::scenarios::ScenarioParams;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let params = ScenarioParams::normal_week(scale);
    let site = params.build_site().halved(); // high load: the discriminating regime
    let trace = params.generate_trace();
    println!(
        "policy shootout | high load | scale {scale} | {} jobs | {} cores\n",
        trace.len(),
        site.total_cores()
    );
    let mut table = Table::new([
        "initial",
        "strategy",
        "susp%",
        "AvgCT(susp)",
        "AvgCT(all)",
        "AvgWCT",
        "moves",
    ]);
    for initial in [InitialKind::RoundRobin, InitialKind::UtilizationBased] {
        for strategy in [
            StrategyKind::NoRes,
            StrategyKind::ResSusUtil,
            StrategyKind::ResSusRand,
            StrategyKind::ResSusQueue,
            StrategyKind::ResSusWaitUtil,
            StrategyKind::ResSusWaitRand,
            StrategyKind::ResSusWaitSmart,
            StrategyKind::MigrateSusUtil,
            StrategyKind::DupSusUtil,
        ] {
            let r = Experiment::new(
                site.clone(),
                trace.clone(),
                SimConfig::new(initial, strategy),
            )
            .run();
            let moves = r.counters.restarts_from_suspend
                + r.counters.restarts_from_wait
                + r.counters.migrations
                + r.counters.duplicates_launched;
            table.row([
                initial.name().to_string(),
                strategy.name().to_string(),
                format!("{:.2}%", r.suspend_rate * 100.0),
                format!("{:.0}", r.avg_ct_suspended),
                format!("{:.0}", r.avg_ct_all),
                format!("{:.1}", r.avg_wct()),
                moves.to_string(),
            ]);
        }
    }
    print!("{table}");
    println!("\nReading guide: ResSusUtil should beat NoRes everywhere; ResSusRand");
    println!("degrades without wait rescheduling but matches ResSusWaitUtil with it.");
    println!("Extensions: ResSusQueue sits between Util and Rand; ResSusWaitSmart");
    println!("(multi-metric) edges out ResSusWaitUtil; MigrateSusUtil keeps progress;");
    println!("DupSusUtil trades redundant work for the best suspended-job latency.");
}
