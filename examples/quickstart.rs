//! Quickstart: build a small cluster by hand, submit a handful of jobs,
//! watch priority preemption happen, and compare `NoRes` against
//! `ResSusUtil` on the same workload.
//!
//! Run with `cargo run --release --example quickstart`.

use netbatch::cluster::ids::PoolId;
use netbatch::cluster::job::{JobSpec, PoolAffinity};
use netbatch::cluster::pool::PoolConfig;
use netbatch::cluster::priority::Priority;
use netbatch::core::experiment::Experiment;
use netbatch::core::policy::{InitialKind, StrategyKind};
use netbatch::core::simulator::SimConfig;
use netbatch::sim_engine::time::{SimDuration, SimTime};
use netbatch::workload::scenarios::SiteSpec;
use netbatch::workload::trace::{Trace, TraceRecord};

fn main() {
    // A two-pool site: pool 0 is the "owned" pool high-priority work is
    // pinned to; pool 1 is spare capacity.
    let site = SiteSpec {
        pools: vec![
            PoolConfig::uniform(PoolId(0), 4, 2, 8192),
            PoolConfig::uniform(PoolId(1), 4, 2, 8192),
        ],
    };

    // Eight low-priority jobs fill pool 0 and half of pool 1...
    let mut records: Vec<TraceRecord> = (0..12)
        .map(|i| TraceRecord {
            submit_minute: i,
            runtime_minutes: 300,
            cores: 1,
            memory_mb: 1024,
            priority: 0,
            affinity: vec![],
            task: None,
        })
        .collect();
    // ...then the owners show up: a burst of high-priority jobs that may
    // only run in pool 0 (§2.3 of the paper).
    for i in 0..8 {
        records.push(TraceRecord {
            submit_minute: 60 + i,
            runtime_minutes: 120,
            cores: 1,
            memory_mb: 1024,
            priority: 10,
            affinity: vec![0],
            task: None,
        });
    }
    let trace = Trace::from_records(records);

    for strategy in [StrategyKind::NoRes, StrategyKind::ResSusUtil] {
        let result = Experiment::new(
            site.clone(),
            trace.clone(),
            SimConfig::new(InitialKind::RoundRobin, strategy),
        )
        .run();
        println!("== {strategy} ==");
        println!(
            "  jobs completed          {}/{}",
            result.counters.completed, result.total_jobs
        );
        println!(
            "  suspend rate            {:.1}% ({} preemptions)",
            result.suspend_rate * 100.0,
            result.counters.suspensions
        );
        println!(
            "  avg completion time     {:.0} min (suspended jobs: {:.0} min)",
            result.avg_ct_all, result.avg_ct_suspended
        );
        println!(
            "  avg wasted time per job {:.1} min = wait {:.1} + suspend {:.1} + resched {:.1}",
            result.avg_wct(),
            result.waste.avg_wait(),
            result.waste.avg_suspend(),
            result.waste.avg_resched()
        );
        println!(
            "  restarts                {} from suspension",
            result.counters.restarts_from_suspend
        );
        println!();
    }

    // The same machinery is usable directly: here is a single preemption
    // at pool level, no simulator involved.
    let mut pool =
        netbatch::cluster::pool::PhysicalPool::new(PoolConfig::uniform(PoolId(0), 1, 1, 4096));
    let low = JobSpec::new(100.into(), SimTime::ZERO, SimDuration::from_hours(5))
        .with_affinity(PoolAffinity::Subset(vec![PoolId(0)]));
    let high = JobSpec::new(101.into(), SimTime::ZERO, SimDuration::from_hours(1))
        .with_priority(Priority::HIGH);
    pool.submit(SimTime::ZERO, &low);
    let outcome = pool.submit(SimTime::from_minutes(30), &high);
    println!("direct pool API: submitting a high-priority job over a low one -> {outcome:?}");
    println!("suspended jobs in pool: {}", pool.suspended_count());
}
