//! The paper's §2.3 motivation, reproduced as a runnable scenario: a burst
//! of latency-sensitive high-priority jobs pinned to two pools overwhelms
//! them and mass-suspends low-priority work — while the rest of the site
//! idles at low utilization. Dynamic rescheduling drains the suspended jobs
//! into that idle capacity.
//!
//! Run with `cargo run --release --example burst_storm`.

use netbatch::core::experiment::Experiment;
use netbatch::core::policy::{InitialKind, StrategyKind};
use netbatch::core::simulator::SimConfig;
use netbatch::metrics::table::Table;
use netbatch::sim_engine::time::SimDuration;
use netbatch::workload::distributions::LogNormal;
use netbatch::workload::generator::{
    AffinityPicker, BurstArrivals, JobClass, PoissonArrivals, Stream, WorkloadSpec,
};
use netbatch::workload::scenarios::SiteSpec;

fn main() {
    // A 10%-scale site: 20 heterogeneous pools.
    let site = SiteSpec::paper_site(0.1);
    println!(
        "site: {} pools, {} cores",
        site.pools.len(),
        site.total_cores()
    );

    // Background: steady low-priority work across the whole site at ~35%
    // offered utilization.
    let background = Stream::new(
        JobClass::new(
            "background",
            0,
            Box::new(LogNormal::with_median(200.0, 1.0)),
        ),
        Box::new(PoissonArrivals::new(2.2)),
    );
    // The storm: one owner group fires a dense multi-day burst into pools
    // 0 and 1 only — a sharp onset that catches low jobs mid-run.
    let storm = Stream::new(
        JobClass::new("storm", 10, Box::new(LogNormal::with_median(240.0, 0.8)))
            .with_affinity(AffinityPicker::Fixed(vec![0, 1])),
        Box::new(BurstArrivals::new(0.001, 4.0, 20_000.0, 4_000.0).starting_in_burst()),
    );
    let spec = WorkloadSpec::new(0, 10_080)
        .stream(background)
        .stream(storm);
    let trace = spec.generate(7);
    println!(
        "trace: {} jobs ({} high-priority)",
        trace.len(),
        trace.iter().filter(|r| r.priority >= 10).count()
    );

    let mut table = Table::new([
        "strategy",
        "suspended jobs",
        "AvgCT susp",
        "AvgST",
        "peak suspended",
        "AvgWCT",
    ]);
    for strategy in [
        StrategyKind::NoRes,
        StrategyKind::ResSusUtil,
        StrategyKind::ResSusWaitRand,
    ] {
        let mut config = SimConfig::new(InitialKind::RoundRobin, strategy).with_sampling();
        config.sample_interval = Some(SimDuration::from_minutes(10));
        let result = Experiment::new(site.clone(), trace.clone(), config).run();
        table.row([
            strategy.name().to_string(),
            result.suspended_jobs().to_string(),
            format!("{:.0}", result.avg_ct_suspended),
            format!("{:.0}", result.avg_st),
            format!("{:.0}", result.suspended_series.max().unwrap_or(0.0)),
            format!("{:.1}", result.avg_wct()),
        ]);
        if strategy == StrategyKind::NoRes {
            // Show the storm profile: suspended-job count over time.
            let agg = result
                .suspended_series
                .aggregate(SimDuration::from_minutes(500));
            println!("\nsuspended jobs over the week under NoRes (one row = ~8.3h):");
            let max = agg.iter().map(|&(_, v)| v).fold(1.0, f64::max);
            for (t, v) in agg {
                println!(
                    "  t+{:>6}m {:>5.0} {}",
                    t.as_minutes(),
                    v,
                    "#".repeat(((v / max) * 50.0).round() as usize)
                );
            }
            println!();
        }
    }
    print!("{table}");
    println!("\nRescheduling drains the suspended backlog into idle pools: the peak");
    println!("suspended count collapses to zero and per-job wasted time drops, at the");
    println!("price of re-running the preempted jobs' lost progress elsewhere.");
}
