//! Machine failures and rescheduling-as-recovery (extension).
//!
//! The paper's future work includes validating on the live platform, where
//! hosts fail. This example injects a rack-sized outage mid-week and shows
//! that the dynamic-rescheduling machinery doubles as failure recovery:
//! evicted jobs flow through the same restart path as preempted ones.
//!
//! Run with `cargo run --release --example failure_recovery`.

use netbatch::cluster::ids::PoolId;
use netbatch::core::experiment::Experiment;
use netbatch::core::policy::{InitialKind, StrategyKind};
use netbatch::core::simulator::{MachineFailure, SimConfig};
use netbatch::sim_engine::time::{SimDuration, SimTime};
use netbatch::workload::scenarios::ScenarioParams;

fn main() {
    let params = ScenarioParams::normal_week(0.05);
    let site = params.build_site();
    let trace = params.generate_trace();
    println!(
        "site: {} pools, {} cores | {} jobs",
        site.pools.len(),
        site.total_cores(),
        trace.len()
    );

    // The outage: half of pool 4's machines go down at midweek for a day.
    let victims = site.pools[4].machines.len() / 2;
    let failures: Vec<MachineFailure> = (0..victims as u32)
        .map(|m| MachineFailure {
            pool: PoolId(4),
            machine: m.into(),
            at: SimTime::from_minutes(5_000),
            down_for: Some(SimDuration::from_days(1)),
        })
        .collect();
    println!(
        "injecting: {} machines of pool 4 down at t=5000 for 24h\n",
        victims
    );

    println!(
        "{:<16} {:>10} {:>12} {:>9} {:>11}",
        "strategy", "evictions", "AvgCT (all)", "AvgWCT", "worst avg"
    );
    for strategy in [StrategyKind::NoRes, StrategyKind::ResSusWaitUtil] {
        for (label, failures) in [("healthy", Vec::new()), ("outage", failures.clone())] {
            let mut config = SimConfig::new(InitialKind::RoundRobin, strategy);
            config.failures = failures;
            let r = Experiment::new(site.clone(), trace.clone(), config).run();
            let worst = r.avg_ct_suspended.max(r.avg_ct_all);
            println!(
                "{:<16} {:>10} {:>12.1} {:>9.1} {:>11.0}  ({label})",
                strategy.name(),
                r.counters.failure_evictions,
                r.avg_ct_all,
                r.avg_wct(),
                worst
            );
        }
    }
    println!("\nUnder NoRes the outage's evicted jobs requeue wherever round-robin");
    println!("drops them; with wait rescheduling they chase free capacity, so the");
    println!("outage barely moves the averages — restart-based rescheduling and");
    println!("failure recovery are the same mechanism.");
}
