//! Chip-simulation campaigns: the paper's §2.2 productivity argument.
//!
//! "Some classes of chip simulation work has logical notions of tasks,
//! each of which represents a set of jobs completing a specific function.
//! Typically, 100% or a high percentage of jobs associated with a
//! particular task needs to complete before the task result … can be
//! useful." A single straggler (e.g. one suspended job) therefore delays
//! the whole task. This example measures **task completion time** — the
//! completion time of each task's last job — with and without dynamic
//! rescheduling.
//!
//! Run with `cargo run --release --example chip_sim_campaign`.

use std::collections::HashMap;

use netbatch::cluster::ids::TaskId;
use netbatch::core::policy::{InitialKind, StrategyKind};
use netbatch::core::simulator::{SimConfig, Simulator};
use netbatch::metrics::summary::SampleSet;
use netbatch::workload::distributions::LogNormal;
use netbatch::workload::generator::{
    AffinityPicker, BurstArrivals, JobClass, PoissonArrivals, Stream, WorkloadSpec,
};
use netbatch::workload::scenarios::SiteSpec;

fn main() {
    let site = SiteSpec::paper_site(0.08);
    // The campaign: regression tasks of 24 jobs each, submitted steadily,
    // restricted to pools 10-19 (where the design databases live); the
    // owners burst into the small pools 14-19 at high priority.
    let campaign = Stream::new(
        JobClass::new(
            "regression",
            0,
            Box::new(LogNormal::with_median(180.0, 0.6)),
        )
        .with_task_size(24)
        .with_affinity(AffinityPicker::Fixed(vec![
            10, 11, 12, 13, 14, 15, 16, 17, 18, 19,
        ])),
        Box::new(PoissonArrivals::new(1.2)),
    );
    // Owners' interactive bursts share the same pools at high priority.
    let owners = Stream::new(
        JobClass::new("owners", 10, Box::new(LogNormal::with_median(200.0, 0.8)))
            .with_affinity(AffinityPicker::Fixed(vec![14, 15, 16, 17, 18, 19])),
        Box::new(BurstArrivals::new(0.01, 1.5, 3_000.0, 1_200.0).starting_in_burst()),
    );
    let spec = WorkloadSpec::new(0, 10_080).stream(campaign).stream(owners);
    let trace = spec.generate(11);
    println!("campaign: {} jobs", trace.len());

    for strategy in [StrategyKind::NoRes, StrategyKind::ResSusWaitUtil] {
        let sim = Simulator::new(
            &site,
            trace.to_specs(),
            SimConfig::new(InitialKind::RoundRobin, strategy),
        );
        let out = sim.run_to_completion();

        // Task completion = completion of the task's last job.
        let mut task_done: HashMap<TaskId, (u64, u64, u64)> = HashMap::new(); // (n, submit_min, done_max)
        for job in &out.jobs {
            let Some(task) = job.spec().task else {
                continue;
            };
            let done = job.completed_at().expect("all jobs complete").as_minutes();
            let submit = job.spec().submit_time.as_minutes();
            let e = task_done.entry(task).or_insert((0, u64::MAX, 0));
            e.0 += 1;
            e.1 = e.1.min(submit);
            e.2 = e.2.max(done);
        }
        // Only full-size tasks count (the trailing partial task is noise).
        let mut task_ct = SampleSet::new();
        let mut job_ct = SampleSet::new();
        for (_, (n, submit, done)) in task_done.iter().filter(|(_, e)| e.0 == 24) {
            let _ = n;
            task_ct.push((done - submit) as f64);
        }
        for job in &out.jobs {
            if job.spec().task.is_some() {
                job_ct.push(job.completion_time().expect("complete").as_minutes_f64());
            }
        }
        println!("\n== {strategy} ==");
        println!("  tasks measured              {}", task_ct.len());
        println!("  mean job completion         {:>7.0} min", job_ct.mean());
        println!("  mean TASK completion        {:>7.0} min", task_ct.mean());
        println!(
            "  p95 task completion         {:>7.0} min",
            task_ct.quantile(0.95).unwrap_or(0.0)
        );
        println!(
            "  worst task                  {:>7.0} min",
            task_ct.quantile(1.0).unwrap_or(0.0)
        );
        println!(
            "  suspensions/restarts        {} / {}",
            out.counters.suspensions,
            out.counters.restarts_from_suspend + out.counters.restarts_from_wait
        );
    }
    println!("\nThe task-level tail (p95/worst) shrinks far more than the mean job");
    println!("completion time: rescheduling rescues exactly the stragglers that");
    println!("block task results — the engineering-productivity win of §2.2.");
}
