#!/usr/bin/env bash
# Tier-1 gate, runnable locally or in CI. The workspace has no network
# dependencies (see Cargo.toml): everything below works fully offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo build --examples"
cargo build --release --workspace --examples

echo "==> cargo test (workspace)"
cargo test --workspace -q

# Quick invariant-checked reproduction: every cell of every table runs
# under the online conservation/lifecycle checker, which panics (failing
# this step) on the first violation. Shape checks are informational at
# this scale (--smoke): they gate at report scale via repro_all's default
# exit behaviour.
echo "==> invariant-checked quick repro (scale 0.02)"
cargo run --release -p netbatch-bench --bin repro_all -- \
  --scale 0.02 --check-invariants --smoke

echo "ci: all green"
