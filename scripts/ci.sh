#!/usr/bin/env bash
# Tier-1 gate, runnable locally or in CI. The workspace has no network
# dependencies (see Cargo.toml): everything below works fully offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "ci: all green"
