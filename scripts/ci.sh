#!/usr/bin/env bash
# Tier-1 gate, runnable locally or in CI. The workspace has no network
# dependencies (see Cargo.toml): everything below works fully offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo build --examples"
cargo build --release --workspace --examples

echo "==> cargo test (workspace)"
cargo test --workspace -q

# Proptest persistence discipline: a shrunk failure worth keeping gets
# promoted to an explicit named regression test (see
# regression_single_machine_filling_job_completes), never committed as
# generator state. If the test run above left a *.proptest-regressions
# file behind — or modified one — that is unpinned drift; fail loudly.
echo "==> proptest regression files did not drift"
# Deletions are exempt: removing a regressions file is the remedy, not
# the drift (the guard would otherwise fail the very commit that fixes
# it). Anything untracked, modified, or newly added fails.
drift="$(git status --porcelain -- '*.proptest-regressions' | grep -v '^D' || true)"
if [ -n "$drift" ]; then
  printf '%s\n' "$drift" >&2
  echo "error: proptest regression file drift — promote the shrunk case to a named test and remove the file" >&2
  exit 1
fi

# Quick invariant-checked reproduction: every cell of every table runs
# under the online conservation/lifecycle checker, which panics (failing
# this step) on the first violation. Shape checks are informational at
# this scale (--smoke): they gate at report scale via repro_all's default
# exit behaviour.
echo "==> invariant-checked quick repro (scale 0.02)"
cargo run --release -p netbatch-bench --bin repro_all -- \
  --scale 0.02 --check-invariants --smoke

# Chaos smoke: a small faulty run with the hardened resilience policy,
# under the online invariant checker (which now also enforces the fault
# discipline: down machines host nothing, backoff ordering, blacklist
# cooldowns). Any violation panics and fails this step.
echo "==> invariant-checked chaos smoke (faults on, hardened)"
cargo run --release --bin netbatch -- simulate \
  --scale 0.02 --strategy ResSusWaitUtil --check-invariants \
  --fault-mtbf 24 --fault-mttr 4 --fault-pool-outages 1 \
  --fault-flaky 0.05 --hardened

# Lifecycle smoke: scheduled maintenance drains, a rolling-update wave
# and health cordons with proactive evacuation, layered over stochastic
# faults, on both backends, under the online invariant checker (which
# also enforces the lifecycle discipline: no dispatch onto draining
# machines, legal drain/undrain alternation, evacuations inside their
# drain windows). Any violation panics and fails this step.
echo "==> invariant-checked lifecycle smoke (serial + sharded)"
for backend in "" "--backend sharded --shards 4"; do
  # shellcheck disable=SC2086
  cargo run --release --bin netbatch -- simulate \
    --scale 0.02 --strategy ResSusWaitUtil --check-invariants \
    --lifecycle --health-aware \
    --fault-mtbf 24 --fault-mttr 4 --fault-flaky 0.05 $backend
done

# Degradation gate: under a heavy lifecycle tier the health-aware
# configuration must actually evacuate — a regression that silently
# disables the proactive-evacuation path fails here — and its mean
# completion time must not be worse than the health-blind baseline's.
echo "==> lifecycle degradation gate (health-aware vs health-blind)"
cargo test --release -q --test lifecycle

# Telemetry smoke: a sampled run exporting the Prometheus exposition,
# then the report pipeline rendering markdown + CSVs from the same
# telemetry. The simulate step validates the exposition before writing
# (a malformed file fails the run); the greps assert the headline
# families and the report's paper-figure sections actually rendered.
echo "==> telemetry smoke (exposition + report)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
cargo run --release --bin netbatch -- simulate \
  --scale 0.02 --strategy ResSusWaitUtil --sample \
  --metrics-out "$tmpdir/run.prom"
grep -q '^netbatch_run_info{strategy="ResSusWaitUtil"' "$tmpdir/run.prom"
grep -q '^netbatch_span_open 0$' "$tmpdir/run.prom"
grep -q '^netbatch_span_unmatched_total 0$' "$tmpdir/run.prom"
cargo run --release --bin netbatch -- report \
  --scale 0.02 --strategy ResSusWaitUtil \
  --out "$tmpdir/report.md" --csv-prefix "$tmpdir/fig"
grep -q '^## Suspension-time CDF (Figure 2)$' "$tmpdir/report.md"
grep -q '^## Site timeline (Figure 4, 100-minute buckets)$' "$tmpdir/report.md"
test -s "$tmpdir/fig_cdf.csv" && test -s "$tmpdir/fig_timeline.csv" \
  && test -s "$tmpdir/fig_pools.csv"

# Provenance trace smoke: record spans on a chaos run, query one job's
# causal chain (with the --why decision audit) through the trace CLI,
# export and JSON-validate a Perfetto trace, and reconcile the span
# stream against the Telemetry phase histograms and run counters from
# the same event stream (the cargo test at the end does the exact
# arithmetic; the greps here assert the CLI surfaces are live).
echo "==> provenance trace smoke (spans, --why audit, Perfetto)"
cargo run --release --bin netbatch -- simulate \
  --scale 0.02 --strategy ResSusWaitUtil --seed 7 \
  --lifecycle --health-aware --hardened \
  --fault-mtbf 24 --fault-mttr 4 \
  --spans-out "$tmpdir/run.spans.jsonl" --profile-out "$tmpdir/run.folded"
head -n 1 "$tmpdir/run.spans.jsonl" | grep -q '"schema":"netbatch-spans/1"'
grep -q '^netbatch;serial;' "$tmpdir/run.folded"
# The first evacuated job must answer `trace --why` with its decisions.
evac_job="$(grep -m1 '"type":"evac"' "$tmpdir/run.spans.jsonl" \
  | sed 's/.*"job":\([0-9]*\).*/\1/')"
cargo run --release --bin netbatch -- trace \
  --in "$tmpdir/run.spans.jsonl" --why "$evac_job" > "$tmpdir/why.txt"
grep -q "^why job $evac_job:" "$tmpdir/why.txt"
grep -q 'evacuation of job' "$tmpdir/why.txt"
cargo run --release --bin netbatch -- trace \
  --in "$tmpdir/run.spans.jsonl" --perfetto-out "$tmpdir/run.perfetto.json"
python3 -c "import json,sys; d=json.load(open(sys.argv[1])); assert d['traceEvents'], 'empty trace'" \
  "$tmpdir/run.perfetto.json"
echo "==> provenance reconciliation (spans vs telemetry vs counters)"
cargo test --release -q --test provenance

# Sharded-kernel smoke: the same invariant-checked run on the sharded
# backend (4 worker shards), plus the cross-backend golden matrix, which
# replays every committed fixture on serial and sharded at shard counts
# {1, 2, 4, 20} and fails on the first non-identical byte.
echo "==> invariant-checked sharded smoke (4 shards)"
cargo run --release --bin netbatch -- simulate \
  --backend sharded --shards 4 --scale 0.02 --check-invariants
echo "==> cross-backend golden matrix"
cargo test --release -q --test golden_matrix

# Streaming pipeline smoke: a year-window run through the CLI front end
# on the sharded backend. The workload is generated shard-locally epoch
# by epoch (never materialized), so this exercises the full pipeline —
# per-shard generation, coordinator merge, kernel profiler lanes — at
# the paper's full trace span in under a second. The greps pin the
# profiler's lane split: coordinator merge vs per-shard generate.
echo "==> streaming pipeline smoke (year window, 2 shards)"
cargo run --release --bin netbatch -- simulate \
  --stream-workload --pools 8 --horizon year --scale 0.02 --seed 11 \
  --backend sharded --shards 2 --profile-out "$tmpdir/stream.folded"
grep -q '^netbatch;coordinator;merge ' "$tmpdir/stream.folded"
grep -q '^netbatch;shard0;generate ' "$tmpdir/stream.folded"
grep -q '^netbatch;shard1;submit ' "$tmpdir/stream.folded"
echo "==> streaming conformance (golden matrix, materialized parity)"
cargo test --release -q --test streaming_conformance

# Perf smoke: one small hot-path cell (events/sec + allocs/event) checked
# against the committed BENCH_hotpath.json. Fails on a >30% events/sec
# regression or an allocs/event ceiling breach; never rewrites the
# baseline (regenerate deliberately with `perf_hotpath` on a quiet
# machine). Catches "the refactor reintroduced per-event allocations"
# without the cost or noise sensitivity of the full scale-0.25 matrix.
echo "==> perf smoke (hot path, scale 0.02)"
cargo run --release -p netbatch-bench --bin perf_hotpath -- \
  --check --scale 0.02

# Streaming perf gate: the committed BENCH_sharded.json headline
# (200-pool streaming cell) must carry a parallel work fraction >= 0.75
# and project >= 1.5x at 4 shards from the measured coordinator/worker
# split; a re-measured smoke cell must show neither coordination-
# overhead nor parallel-work-fraction regressions; and a memory-flatness
# smoke asserts that quadrupling the horizon leaves the streaming run's
# peak heap within 1.5x — catching anything that starts retaining
# per-job state past completion (all checks are meaningful on
# single-core CI hosts, where threads cannot show wall-clock speedups).
echo "==> perf smoke (streaming pipeline)"
cargo run --release -p netbatch-bench --bin perf_sharded -- --check

echo "ci: all green"
