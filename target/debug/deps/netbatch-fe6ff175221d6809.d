/root/repo/target/debug/deps/netbatch-fe6ff175221d6809.d: src/bin/netbatch.rs

/root/repo/target/debug/deps/netbatch-fe6ff175221d6809: src/bin/netbatch.rs

src/bin/netbatch.rs:
