/root/repo/target/debug/deps/table2b_high_suspension-99dd890789568bc7.d: crates/bench/src/bin/table2b_high_suspension.rs

/root/repo/target/debug/deps/table2b_high_suspension-99dd890789568bc7: crates/bench/src/bin/table2b_high_suspension.rs

crates/bench/src/bin/table2b_high_suspension.rs:
