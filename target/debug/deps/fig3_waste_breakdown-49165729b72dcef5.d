/root/repo/target/debug/deps/fig3_waste_breakdown-49165729b72dcef5.d: crates/bench/src/bin/fig3_waste_breakdown.rs

/root/repo/target/debug/deps/fig3_waste_breakdown-49165729b72dcef5: crates/bench/src/bin/fig3_waste_breakdown.rs

crates/bench/src/bin/fig3_waste_breakdown.rs:
