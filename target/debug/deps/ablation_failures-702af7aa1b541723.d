/root/repo/target/debug/deps/ablation_failures-702af7aa1b541723.d: crates/bench/src/bin/ablation_failures.rs Cargo.toml

/root/repo/target/debug/deps/libablation_failures-702af7aa1b541723.rmeta: crates/bench/src/bin/ablation_failures.rs Cargo.toml

crates/bench/src/bin/ablation_failures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
