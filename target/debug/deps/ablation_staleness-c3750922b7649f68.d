/root/repo/target/debug/deps/ablation_staleness-c3750922b7649f68.d: crates/bench/src/bin/ablation_staleness.rs Cargo.toml

/root/repo/target/debug/deps/libablation_staleness-c3750922b7649f68.rmeta: crates/bench/src/bin/ablation_staleness.rs Cargo.toml

crates/bench/src/bin/ablation_staleness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
