/root/repo/target/debug/deps/ablation_smart_policy-9072a25c8d0a119f.d: crates/bench/src/bin/ablation_smart_policy.rs

/root/repo/target/debug/deps/ablation_smart_policy-9072a25c8d0a119f: crates/bench/src/bin/ablation_smart_policy.rs

crates/bench/src/bin/ablation_smart_policy.rs:
