/root/repo/target/debug/deps/netbatch_bench-47ad88738f328d43.d: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libnetbatch_bench-47ad88738f328d43.rmeta: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/runner.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
crates/bench/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
