/root/repo/target/debug/deps/ablation_failures-cf7ff6903f347bd2.d: crates/bench/src/bin/ablation_failures.rs

/root/repo/target/debug/deps/ablation_failures-cf7ff6903f347bd2: crates/bench/src/bin/ablation_failures.rs

crates/bench/src/bin/ablation_failures.rs:
