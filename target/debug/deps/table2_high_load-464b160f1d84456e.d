/root/repo/target/debug/deps/table2_high_load-464b160f1d84456e.d: crates/bench/src/bin/table2_high_load.rs

/root/repo/target/debug/deps/table2_high_load-464b160f1d84456e: crates/bench/src/bin/table2_high_load.rs

crates/bench/src/bin/table2_high_load.rs:
