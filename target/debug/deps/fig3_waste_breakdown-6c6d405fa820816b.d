/root/repo/target/debug/deps/fig3_waste_breakdown-6c6d405fa820816b.d: crates/bench/src/bin/fig3_waste_breakdown.rs

/root/repo/target/debug/deps/fig3_waste_breakdown-6c6d405fa820816b: crates/bench/src/bin/fig3_waste_breakdown.rs

crates/bench/src/bin/fig3_waste_breakdown.rs:
