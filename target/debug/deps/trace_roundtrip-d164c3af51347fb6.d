/root/repo/target/debug/deps/trace_roundtrip-d164c3af51347fb6.d: tests/trace_roundtrip.rs

/root/repo/target/debug/deps/trace_roundtrip-d164c3af51347fb6: tests/trace_roundtrip.rs

tests/trace_roundtrip.rs:
