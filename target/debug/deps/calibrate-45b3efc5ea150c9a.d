/root/repo/target/debug/deps/calibrate-45b3efc5ea150c9a.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-45b3efc5ea150c9a: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
