/root/repo/target/debug/deps/fig2_suspension_cdf-8e8d710a58563ff9.d: crates/bench/src/bin/fig2_suspension_cdf.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_suspension_cdf-8e8d710a58563ff9.rmeta: crates/bench/src/bin/fig2_suspension_cdf.rs Cargo.toml

crates/bench/src/bin/fig2_suspension_cdf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
