/root/repo/target/debug/deps/netbatch_sim_engine-867216550266f78e.d: crates/sim-engine/src/lib.rs crates/sim-engine/src/executor.rs crates/sim-engine/src/observe.rs crates/sim-engine/src/queue.rs crates/sim-engine/src/rng.rs crates/sim-engine/src/sampler.rs crates/sim-engine/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libnetbatch_sim_engine-867216550266f78e.rmeta: crates/sim-engine/src/lib.rs crates/sim-engine/src/executor.rs crates/sim-engine/src/observe.rs crates/sim-engine/src/queue.rs crates/sim-engine/src/rng.rs crates/sim-engine/src/sampler.rs crates/sim-engine/src/time.rs Cargo.toml

crates/sim-engine/src/lib.rs:
crates/sim-engine/src/executor.rs:
crates/sim-engine/src/observe.rs:
crates/sim-engine/src/queue.rs:
crates/sim-engine/src/rng.rs:
crates/sim-engine/src/sampler.rs:
crates/sim-engine/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
