/root/repo/target/debug/deps/table5_wait_util_initial-bb393c61676d4924.d: crates/bench/src/bin/table5_wait_util_initial.rs

/root/repo/target/debug/deps/table5_wait_util_initial-bb393c61676d4924: crates/bench/src/bin/table5_wait_util_initial.rs

crates/bench/src/bin/table5_wait_util_initial.rs:
