/root/repo/target/debug/deps/ablation_alternatives-62cb986f2fd5447e.d: crates/bench/src/bin/ablation_alternatives.rs

/root/repo/target/debug/deps/ablation_alternatives-62cb986f2fd5447e: crates/bench/src/bin/ablation_alternatives.rs

crates/bench/src/bin/ablation_alternatives.rs:
