/root/repo/target/debug/deps/table2b_high_suspension-b7e895aaccb6366b.d: crates/bench/src/bin/table2b_high_suspension.rs Cargo.toml

/root/repo/target/debug/deps/libtable2b_high_suspension-b7e895aaccb6366b.rmeta: crates/bench/src/bin/table2b_high_suspension.rs Cargo.toml

crates/bench/src/bin/table2b_high_suspension.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
