/root/repo/target/debug/deps/netbatch-e2330e47cac1453e.d: src/lib.rs

/root/repo/target/debug/deps/netbatch-e2330e47cac1453e: src/lib.rs

src/lib.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
