/root/repo/target/debug/deps/fig4_suspension_timeline-79bec296a39466b3.d: crates/bench/src/bin/fig4_suspension_timeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_suspension_timeline-79bec296a39466b3.rmeta: crates/bench/src/bin/fig4_suspension_timeline.rs Cargo.toml

crates/bench/src/bin/fig4_suspension_timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
