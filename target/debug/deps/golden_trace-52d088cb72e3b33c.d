/root/repo/target/debug/deps/golden_trace-52d088cb72e3b33c.d: tests/golden_trace.rs

/root/repo/target/debug/deps/golden_trace-52d088cb72e3b33c: tests/golden_trace.rs

tests/golden_trace.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
