/root/repo/target/debug/deps/netbatch-19a3b45b3bba5386.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnetbatch-19a3b45b3bba5386.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CARGO_PKG_VERSION=0.1.0
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
