/root/repo/target/debug/deps/ablation_failures-fb968228e7e27124.d: crates/bench/src/bin/ablation_failures.rs Cargo.toml

/root/repo/target/debug/deps/libablation_failures-fb968228e7e27124.rmeta: crates/bench/src/bin/ablation_failures.rs Cargo.toml

crates/bench/src/bin/ablation_failures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
