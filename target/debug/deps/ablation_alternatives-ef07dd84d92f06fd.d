/root/repo/target/debug/deps/ablation_alternatives-ef07dd84d92f06fd.d: crates/bench/src/bin/ablation_alternatives.rs Cargo.toml

/root/repo/target/debug/deps/libablation_alternatives-ef07dd84d92f06fd.rmeta: crates/bench/src/bin/ablation_alternatives.rs Cargo.toml

crates/bench/src/bin/ablation_alternatives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
