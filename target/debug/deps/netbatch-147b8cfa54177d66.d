/root/repo/target/debug/deps/netbatch-147b8cfa54177d66.d: src/bin/netbatch.rs Cargo.toml

/root/repo/target/debug/deps/libnetbatch-147b8cfa54177d66.rmeta: src/bin/netbatch.rs Cargo.toml

src/bin/netbatch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
