/root/repo/target/debug/deps/perf_baseline-6885402e84002a8d.d: crates/bench/src/bin/perf_baseline.rs

/root/repo/target/debug/deps/perf_baseline-6885402e84002a8d: crates/bench/src/bin/perf_baseline.rs

crates/bench/src/bin/perf_baseline.rs:
