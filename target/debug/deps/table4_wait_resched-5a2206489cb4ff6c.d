/root/repo/target/debug/deps/table4_wait_resched-5a2206489cb4ff6c.d: crates/bench/src/bin/table4_wait_resched.rs

/root/repo/target/debug/deps/table4_wait_resched-5a2206489cb4ff6c: crates/bench/src/bin/table4_wait_resched.rs

crates/bench/src/bin/table4_wait_resched.rs:
