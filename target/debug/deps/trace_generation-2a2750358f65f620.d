/root/repo/target/debug/deps/trace_generation-2a2750358f65f620.d: crates/bench/benches/trace_generation.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_generation-2a2750358f65f620.rmeta: crates/bench/benches/trace_generation.rs Cargo.toml

crates/bench/benches/trace_generation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
