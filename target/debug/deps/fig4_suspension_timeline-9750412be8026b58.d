/root/repo/target/debug/deps/fig4_suspension_timeline-9750412be8026b58.d: crates/bench/src/bin/fig4_suspension_timeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_suspension_timeline-9750412be8026b58.rmeta: crates/bench/src/bin/fig4_suspension_timeline.rs Cargo.toml

crates/bench/src/bin/fig4_suspension_timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
