/root/repo/target/debug/deps/table1_normal_load-d5663b8431a895c4.d: crates/bench/src/bin/table1_normal_load.rs

/root/repo/target/debug/deps/table1_normal_load-d5663b8431a895c4: crates/bench/src/bin/table1_normal_load.rs

crates/bench/src/bin/table1_normal_load.rs:
