/root/repo/target/debug/deps/ablation_queue_policy-fe4d8da05491c06d.d: crates/bench/src/bin/ablation_queue_policy.rs

/root/repo/target/debug/deps/ablation_queue_policy-fe4d8da05491c06d: crates/bench/src/bin/ablation_queue_policy.rs

crates/bench/src/bin/ablation_queue_policy.rs:
