/root/repo/target/debug/deps/netbatch_metrics-7f82ccb5aeb42516.d: crates/metrics/src/lib.rs crates/metrics/src/cdf.rs crates/metrics/src/histogram.rs crates/metrics/src/summary.rs crates/metrics/src/table.rs crates/metrics/src/timeseries.rs crates/metrics/src/waste.rs

/root/repo/target/debug/deps/netbatch_metrics-7f82ccb5aeb42516: crates/metrics/src/lib.rs crates/metrics/src/cdf.rs crates/metrics/src/histogram.rs crates/metrics/src/summary.rs crates/metrics/src/table.rs crates/metrics/src/timeseries.rs crates/metrics/src/waste.rs

crates/metrics/src/lib.rs:
crates/metrics/src/cdf.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/table.rs:
crates/metrics/src/timeseries.rs:
crates/metrics/src/waste.rs:
