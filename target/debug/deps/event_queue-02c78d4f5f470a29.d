/root/repo/target/debug/deps/event_queue-02c78d4f5f470a29.d: crates/bench/benches/event_queue.rs Cargo.toml

/root/repo/target/debug/deps/libevent_queue-02c78d4f5f470a29.rmeta: crates/bench/benches/event_queue.rs Cargo.toml

crates/bench/benches/event_queue.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
