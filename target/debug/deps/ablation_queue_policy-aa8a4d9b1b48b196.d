/root/repo/target/debug/deps/ablation_queue_policy-aa8a4d9b1b48b196.d: crates/bench/src/bin/ablation_queue_policy.rs Cargo.toml

/root/repo/target/debug/deps/libablation_queue_policy-aa8a4d9b1b48b196.rmeta: crates/bench/src/bin/ablation_queue_policy.rs Cargo.toml

crates/bench/src/bin/ablation_queue_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
