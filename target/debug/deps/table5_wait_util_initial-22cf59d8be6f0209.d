/root/repo/target/debug/deps/table5_wait_util_initial-22cf59d8be6f0209.d: crates/bench/src/bin/table5_wait_util_initial.rs Cargo.toml

/root/repo/target/debug/deps/libtable5_wait_util_initial-22cf59d8be6f0209.rmeta: crates/bench/src/bin/table5_wait_util_initial.rs Cargo.toml

crates/bench/src/bin/table5_wait_util_initial.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
