/root/repo/target/debug/deps/golden_chaos-8cdd09c673f65ad4.d: tests/golden_chaos.rs

/root/repo/target/debug/deps/golden_chaos-8cdd09c673f65ad4: tests/golden_chaos.rs

tests/golden_chaos.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
