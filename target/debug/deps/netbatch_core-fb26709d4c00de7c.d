/root/repo/target/debug/deps/netbatch_core-fb26709d4c00de7c.d: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/faults.rs crates/core/src/observer.rs crates/core/src/policy/mod.rs crates/core/src/policy/initial.rs crates/core/src/policy/resched.rs crates/core/src/simulator.rs

/root/repo/target/debug/deps/libnetbatch_core-fb26709d4c00de7c.rlib: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/faults.rs crates/core/src/observer.rs crates/core/src/policy/mod.rs crates/core/src/policy/initial.rs crates/core/src/policy/resched.rs crates/core/src/simulator.rs

/root/repo/target/debug/deps/libnetbatch_core-fb26709d4c00de7c.rmeta: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/faults.rs crates/core/src/observer.rs crates/core/src/policy/mod.rs crates/core/src/policy/initial.rs crates/core/src/policy/resched.rs crates/core/src/simulator.rs

crates/core/src/lib.rs:
crates/core/src/experiment.rs:
crates/core/src/faults.rs:
crates/core/src/observer.rs:
crates/core/src/policy/mod.rs:
crates/core/src/policy/initial.rs:
crates/core/src/policy/resched.rs:
crates/core/src/simulator.rs:
