/root/repo/target/debug/deps/golden_chaos-bc837d5ea4c048c2.d: tests/golden_chaos.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_chaos-bc837d5ea4c048c2.rmeta: tests/golden_chaos.rs Cargo.toml

tests/golden_chaos.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
