/root/repo/target/debug/deps/ablation_max_restarts-1c107074e368dfb0.d: crates/bench/src/bin/ablation_max_restarts.rs

/root/repo/target/debug/deps/ablation_max_restarts-1c107074e368dfb0: crates/bench/src/bin/ablation_max_restarts.rs

crates/bench/src/bin/ablation_max_restarts.rs:
