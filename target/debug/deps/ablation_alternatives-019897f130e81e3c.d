/root/repo/target/debug/deps/ablation_alternatives-019897f130e81e3c.d: crates/bench/src/bin/ablation_alternatives.rs

/root/repo/target/debug/deps/ablation_alternatives-019897f130e81e3c: crates/bench/src/bin/ablation_alternatives.rs

crates/bench/src/bin/ablation_alternatives.rs:
