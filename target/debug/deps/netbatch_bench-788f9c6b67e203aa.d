/root/repo/target/debug/deps/netbatch_bench-788f9c6b67e203aa.d: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/netbatch_bench-788f9c6b67e203aa: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
crates/bench/src/runner.rs:
