/root/repo/target/debug/deps/netbatch-b603d04e63ca9ff4.d: src/bin/netbatch.rs

/root/repo/target/debug/deps/netbatch-b603d04e63ca9ff4: src/bin/netbatch.rs

src/bin/netbatch.rs:
