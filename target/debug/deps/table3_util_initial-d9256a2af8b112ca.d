/root/repo/target/debug/deps/table3_util_initial-d9256a2af8b112ca.d: crates/bench/src/bin/table3_util_initial.rs

/root/repo/target/debug/deps/table3_util_initial-d9256a2af8b112ca: crates/bench/src/bin/table3_util_initial.rs

crates/bench/src/bin/table3_util_initial.rs:
