/root/repo/target/debug/deps/lifecycle_invariants-e3b63ba95c34fa2a.d: tests/lifecycle_invariants.rs

/root/repo/target/debug/deps/lifecycle_invariants-e3b63ba95c34fa2a: tests/lifecycle_invariants.rs

tests/lifecycle_invariants.rs:
