/root/repo/target/debug/deps/table4_wait_resched-758e266a871493a1.d: crates/bench/src/bin/table4_wait_resched.rs

/root/repo/target/debug/deps/table4_wait_resched-758e266a871493a1: crates/bench/src/bin/table4_wait_resched.rs

crates/bench/src/bin/table4_wait_resched.rs:
