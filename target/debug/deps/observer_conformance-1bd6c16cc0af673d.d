/root/repo/target/debug/deps/observer_conformance-1bd6c16cc0af673d.d: tests/observer_conformance.rs Cargo.toml

/root/repo/target/debug/deps/libobserver_conformance-1bd6c16cc0af673d.rmeta: tests/observer_conformance.rs Cargo.toml

tests/observer_conformance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
