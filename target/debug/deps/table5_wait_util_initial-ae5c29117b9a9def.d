/root/repo/target/debug/deps/table5_wait_util_initial-ae5c29117b9a9def.d: crates/bench/src/bin/table5_wait_util_initial.rs Cargo.toml

/root/repo/target/debug/deps/libtable5_wait_util_initial-ae5c29117b9a9def.rmeta: crates/bench/src/bin/table5_wait_util_initial.rs Cargo.toml

crates/bench/src/bin/table5_wait_util_initial.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
