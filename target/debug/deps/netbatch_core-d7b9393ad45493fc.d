/root/repo/target/debug/deps/netbatch_core-d7b9393ad45493fc.d: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/faults.rs crates/core/src/observer.rs crates/core/src/policy/mod.rs crates/core/src/policy/initial.rs crates/core/src/policy/resched.rs crates/core/src/simulator.rs

/root/repo/target/debug/deps/netbatch_core-d7b9393ad45493fc: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/faults.rs crates/core/src/observer.rs crates/core/src/policy/mod.rs crates/core/src/policy/initial.rs crates/core/src/policy/resched.rs crates/core/src/simulator.rs

crates/core/src/lib.rs:
crates/core/src/experiment.rs:
crates/core/src/faults.rs:
crates/core/src/observer.rs:
crates/core/src/policy/mod.rs:
crates/core/src/policy/initial.rs:
crates/core/src/policy/resched.rs:
crates/core/src/simulator.rs:
