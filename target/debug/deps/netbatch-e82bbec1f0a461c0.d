/root/repo/target/debug/deps/netbatch-e82bbec1f0a461c0.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnetbatch-e82bbec1f0a461c0.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CARGO_PKG_VERSION=0.1.0
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
