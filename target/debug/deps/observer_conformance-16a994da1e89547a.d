/root/repo/target/debug/deps/observer_conformance-16a994da1e89547a.d: tests/observer_conformance.rs

/root/repo/target/debug/deps/observer_conformance-16a994da1e89547a: tests/observer_conformance.rs

tests/observer_conformance.rs:
