/root/repo/target/debug/deps/perf_baseline-27f6788840aa9c8d.d: crates/bench/src/bin/perf_baseline.rs Cargo.toml

/root/repo/target/debug/deps/libperf_baseline-27f6788840aa9c8d.rmeta: crates/bench/src/bin/perf_baseline.rs Cargo.toml

crates/bench/src/bin/perf_baseline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
