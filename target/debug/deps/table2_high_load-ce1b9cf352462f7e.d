/root/repo/target/debug/deps/table2_high_load-ce1b9cf352462f7e.d: crates/bench/src/bin/table2_high_load.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_high_load-ce1b9cf352462f7e.rmeta: crates/bench/src/bin/table2_high_load.rs Cargo.toml

crates/bench/src/bin/table2_high_load.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
