/root/repo/target/debug/deps/table2_high_load-30900da5e6baa93c.d: crates/bench/src/bin/table2_high_load.rs

/root/repo/target/debug/deps/table2_high_load-30900da5e6baa93c: crates/bench/src/bin/table2_high_load.rs

crates/bench/src/bin/table2_high_load.rs:
