/root/repo/target/debug/deps/table3_util_initial-774e49791ba9ff40.d: crates/bench/src/bin/table3_util_initial.rs

/root/repo/target/debug/deps/table3_util_initial-774e49791ba9ff40: crates/bench/src/bin/table3_util_initial.rs

crates/bench/src/bin/table3_util_initial.rs:
