/root/repo/target/debug/deps/table1_normal_load-d6c757ac2cba2952.d: crates/bench/src/bin/table1_normal_load.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_normal_load-d6c757ac2cba2952.rmeta: crates/bench/src/bin/table1_normal_load.rs Cargo.toml

crates/bench/src/bin/table1_normal_load.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
