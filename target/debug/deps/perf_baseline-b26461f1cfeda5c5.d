/root/repo/target/debug/deps/perf_baseline-b26461f1cfeda5c5.d: crates/bench/src/bin/perf_baseline.rs Cargo.toml

/root/repo/target/debug/deps/libperf_baseline-b26461f1cfeda5c5.rmeta: crates/bench/src/bin/perf_baseline.rs Cargo.toml

crates/bench/src/bin/perf_baseline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
