/root/repo/target/debug/deps/netbatch_bench-b155a4e8ce8f5d63.d: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libnetbatch_bench-b155a4e8ce8f5d63.rlib: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libnetbatch_bench-b155a4e8ce8f5d63.rmeta: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
crates/bench/src/runner.rs:
