/root/repo/target/debug/deps/netbatch_workload-6eaedfd92a8e42b1.d: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/distributions.rs crates/workload/src/generator/mod.rs crates/workload/src/generator/affinity.rs crates/workload/src/generator/arrivals.rs crates/workload/src/generator/jobs.rs crates/workload/src/io.rs crates/workload/src/scenarios.rs crates/workload/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libnetbatch_workload-6eaedfd92a8e42b1.rmeta: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/distributions.rs crates/workload/src/generator/mod.rs crates/workload/src/generator/affinity.rs crates/workload/src/generator/arrivals.rs crates/workload/src/generator/jobs.rs crates/workload/src/io.rs crates/workload/src/scenarios.rs crates/workload/src/trace.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/analysis.rs:
crates/workload/src/distributions.rs:
crates/workload/src/generator/mod.rs:
crates/workload/src/generator/affinity.rs:
crates/workload/src/generator/arrivals.rs:
crates/workload/src/generator/jobs.rs:
crates/workload/src/io.rs:
crates/workload/src/scenarios.rs:
crates/workload/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
