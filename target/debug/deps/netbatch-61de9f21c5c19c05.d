/root/repo/target/debug/deps/netbatch-61de9f21c5c19c05.d: src/lib.rs

/root/repo/target/debug/deps/libnetbatch-61de9f21c5c19c05.rlib: src/lib.rs

/root/repo/target/debug/deps/libnetbatch-61de9f21c5c19c05.rmeta: src/lib.rs

src/lib.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
