/root/repo/target/debug/deps/ablation_queue_policy-7995bdeb2c4acd8a.d: crates/bench/src/bin/ablation_queue_policy.rs Cargo.toml

/root/repo/target/debug/deps/libablation_queue_policy-7995bdeb2c4acd8a.rmeta: crates/bench/src/bin/ablation_queue_policy.rs Cargo.toml

crates/bench/src/bin/ablation_queue_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
