/root/repo/target/debug/deps/netbatch_cluster-be0b9eacd3ad9dd8.d: crates/cluster/src/lib.rs crates/cluster/src/ids.rs crates/cluster/src/index.rs crates/cluster/src/job.rs crates/cluster/src/machine.rs crates/cluster/src/pool.rs crates/cluster/src/priority.rs crates/cluster/src/snapshot.rs

/root/repo/target/debug/deps/netbatch_cluster-be0b9eacd3ad9dd8: crates/cluster/src/lib.rs crates/cluster/src/ids.rs crates/cluster/src/index.rs crates/cluster/src/job.rs crates/cluster/src/machine.rs crates/cluster/src/pool.rs crates/cluster/src/priority.rs crates/cluster/src/snapshot.rs

crates/cluster/src/lib.rs:
crates/cluster/src/ids.rs:
crates/cluster/src/index.rs:
crates/cluster/src/job.rs:
crates/cluster/src/machine.rs:
crates/cluster/src/pool.rs:
crates/cluster/src/priority.rs:
crates/cluster/src/snapshot.rs:
