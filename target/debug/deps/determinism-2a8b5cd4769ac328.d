/root/repo/target/debug/deps/determinism-2a8b5cd4769ac328.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-2a8b5cd4769ac328.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
