/root/repo/target/debug/deps/netbatch_cluster-5e150ea314ceb761.d: crates/cluster/src/lib.rs crates/cluster/src/ids.rs crates/cluster/src/index.rs crates/cluster/src/job.rs crates/cluster/src/machine.rs crates/cluster/src/pool.rs crates/cluster/src/priority.rs crates/cluster/src/snapshot.rs Cargo.toml

/root/repo/target/debug/deps/libnetbatch_cluster-5e150ea314ceb761.rmeta: crates/cluster/src/lib.rs crates/cluster/src/ids.rs crates/cluster/src/index.rs crates/cluster/src/job.rs crates/cluster/src/machine.rs crates/cluster/src/pool.rs crates/cluster/src/priority.rs crates/cluster/src/snapshot.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/ids.rs:
crates/cluster/src/index.rs:
crates/cluster/src/job.rs:
crates/cluster/src/machine.rs:
crates/cluster/src/pool.rs:
crates/cluster/src/priority.rs:
crates/cluster/src/snapshot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
