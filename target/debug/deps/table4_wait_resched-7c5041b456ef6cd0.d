/root/repo/target/debug/deps/table4_wait_resched-7c5041b456ef6cd0.d: crates/bench/src/bin/table4_wait_resched.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_wait_resched-7c5041b456ef6cd0.rmeta: crates/bench/src/bin/table4_wait_resched.rs Cargo.toml

crates/bench/src/bin/table4_wait_resched.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
