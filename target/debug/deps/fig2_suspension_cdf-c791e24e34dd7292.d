/root/repo/target/debug/deps/fig2_suspension_cdf-c791e24e34dd7292.d: crates/bench/src/bin/fig2_suspension_cdf.rs

/root/repo/target/debug/deps/fig2_suspension_cdf-c791e24e34dd7292: crates/bench/src/bin/fig2_suspension_cdf.rs

crates/bench/src/bin/fig2_suspension_cdf.rs:
