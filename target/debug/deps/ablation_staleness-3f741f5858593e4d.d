/root/repo/target/debug/deps/ablation_staleness-3f741f5858593e4d.d: crates/bench/src/bin/ablation_staleness.rs

/root/repo/target/debug/deps/ablation_staleness-3f741f5858593e4d: crates/bench/src/bin/ablation_staleness.rs

crates/bench/src/bin/ablation_staleness.rs:
