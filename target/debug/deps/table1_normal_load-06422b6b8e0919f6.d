/root/repo/target/debug/deps/table1_normal_load-06422b6b8e0919f6.d: crates/bench/src/bin/table1_normal_load.rs

/root/repo/target/debug/deps/table1_normal_load-06422b6b8e0919f6: crates/bench/src/bin/table1_normal_load.rs

crates/bench/src/bin/table1_normal_load.rs:
