/root/repo/target/debug/deps/ablation_max_restarts-ed7be2aa08ebab0e.d: crates/bench/src/bin/ablation_max_restarts.rs Cargo.toml

/root/repo/target/debug/deps/libablation_max_restarts-ed7be2aa08ebab0e.rmeta: crates/bench/src/bin/ablation_max_restarts.rs Cargo.toml

crates/bench/src/bin/ablation_max_restarts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
