/root/repo/target/debug/deps/netbatch_sim_engine-8a03fa525d95e009.d: crates/sim-engine/src/lib.rs crates/sim-engine/src/executor.rs crates/sim-engine/src/observe.rs crates/sim-engine/src/queue.rs crates/sim-engine/src/rng.rs crates/sim-engine/src/sampler.rs crates/sim-engine/src/time.rs

/root/repo/target/debug/deps/libnetbatch_sim_engine-8a03fa525d95e009.rlib: crates/sim-engine/src/lib.rs crates/sim-engine/src/executor.rs crates/sim-engine/src/observe.rs crates/sim-engine/src/queue.rs crates/sim-engine/src/rng.rs crates/sim-engine/src/sampler.rs crates/sim-engine/src/time.rs

/root/repo/target/debug/deps/libnetbatch_sim_engine-8a03fa525d95e009.rmeta: crates/sim-engine/src/lib.rs crates/sim-engine/src/executor.rs crates/sim-engine/src/observe.rs crates/sim-engine/src/queue.rs crates/sim-engine/src/rng.rs crates/sim-engine/src/sampler.rs crates/sim-engine/src/time.rs

crates/sim-engine/src/lib.rs:
crates/sim-engine/src/executor.rs:
crates/sim-engine/src/observe.rs:
crates/sim-engine/src/queue.rs:
crates/sim-engine/src/rng.rs:
crates/sim-engine/src/sampler.rs:
crates/sim-engine/src/time.rs:
