/root/repo/target/debug/deps/ablation_overhead-1a67abab5460d9bf.d: crates/bench/src/bin/ablation_overhead.rs

/root/repo/target/debug/deps/ablation_overhead-1a67abab5460d9bf: crates/bench/src/bin/ablation_overhead.rs

crates/bench/src/bin/ablation_overhead.rs:
