/root/repo/target/debug/deps/lifecycle_invariants-caa93bd4c509f26b.d: tests/lifecycle_invariants.rs Cargo.toml

/root/repo/target/debug/deps/liblifecycle_invariants-caa93bd4c509f26b.rmeta: tests/lifecycle_invariants.rs Cargo.toml

tests/lifecycle_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
