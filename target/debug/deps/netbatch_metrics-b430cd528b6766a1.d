/root/repo/target/debug/deps/netbatch_metrics-b430cd528b6766a1.d: crates/metrics/src/lib.rs crates/metrics/src/cdf.rs crates/metrics/src/histogram.rs crates/metrics/src/summary.rs crates/metrics/src/table.rs crates/metrics/src/timeseries.rs crates/metrics/src/waste.rs

/root/repo/target/debug/deps/libnetbatch_metrics-b430cd528b6766a1.rlib: crates/metrics/src/lib.rs crates/metrics/src/cdf.rs crates/metrics/src/histogram.rs crates/metrics/src/summary.rs crates/metrics/src/table.rs crates/metrics/src/timeseries.rs crates/metrics/src/waste.rs

/root/repo/target/debug/deps/libnetbatch_metrics-b430cd528b6766a1.rmeta: crates/metrics/src/lib.rs crates/metrics/src/cdf.rs crates/metrics/src/histogram.rs crates/metrics/src/summary.rs crates/metrics/src/table.rs crates/metrics/src/timeseries.rs crates/metrics/src/waste.rs

crates/metrics/src/lib.rs:
crates/metrics/src/cdf.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/table.rs:
crates/metrics/src/timeseries.rs:
crates/metrics/src/waste.rs:
