/root/repo/target/debug/deps/table2b_high_suspension-2fe8642cb1362d9e.d: crates/bench/src/bin/table2b_high_suspension.rs

/root/repo/target/debug/deps/table2b_high_suspension-2fe8642cb1362d9e: crates/bench/src/bin/table2b_high_suspension.rs

crates/bench/src/bin/table2b_high_suspension.rs:
