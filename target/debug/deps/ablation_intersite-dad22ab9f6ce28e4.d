/root/repo/target/debug/deps/ablation_intersite-dad22ab9f6ce28e4.d: crates/bench/src/bin/ablation_intersite.rs

/root/repo/target/debug/deps/ablation_intersite-dad22ab9f6ce28e4: crates/bench/src/bin/ablation_intersite.rs

crates/bench/src/bin/ablation_intersite.rs:
