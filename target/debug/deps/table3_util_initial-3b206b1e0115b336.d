/root/repo/target/debug/deps/table3_util_initial-3b206b1e0115b336.d: crates/bench/src/bin/table3_util_initial.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_util_initial-3b206b1e0115b336.rmeta: crates/bench/src/bin/table3_util_initial.rs Cargo.toml

crates/bench/src/bin/table3_util_initial.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
