/root/repo/target/debug/deps/fig2_suspension_cdf-5b4ee638d6355cfb.d: crates/bench/src/bin/fig2_suspension_cdf.rs

/root/repo/target/debug/deps/fig2_suspension_cdf-5b4ee638d6355cfb: crates/bench/src/bin/fig2_suspension_cdf.rs

crates/bench/src/bin/fig2_suspension_cdf.rs:
