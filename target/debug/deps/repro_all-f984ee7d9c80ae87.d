/root/repo/target/debug/deps/repro_all-f984ee7d9c80ae87.d: crates/bench/src/bin/repro_all.rs

/root/repo/target/debug/deps/repro_all-f984ee7d9c80ae87: crates/bench/src/bin/repro_all.rs

crates/bench/src/bin/repro_all.rs:
