/root/repo/target/debug/deps/determinism-4f57d0ccc1e4e7e5.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-4f57d0ccc1e4e7e5: tests/determinism.rs

tests/determinism.rs:
