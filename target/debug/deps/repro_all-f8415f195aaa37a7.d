/root/repo/target/debug/deps/repro_all-f8415f195aaa37a7.d: crates/bench/src/bin/repro_all.rs

/root/repo/target/debug/deps/repro_all-f8415f195aaa37a7: crates/bench/src/bin/repro_all.rs

crates/bench/src/bin/repro_all.rs:
