/root/repo/target/debug/deps/ablation_max_restarts-d7720f7fb5667fe3.d: crates/bench/src/bin/ablation_max_restarts.rs

/root/repo/target/debug/deps/ablation_max_restarts-d7720f7fb5667fe3: crates/bench/src/bin/ablation_max_restarts.rs

crates/bench/src/bin/ablation_max_restarts.rs:
