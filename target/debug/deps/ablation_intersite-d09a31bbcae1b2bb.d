/root/repo/target/debug/deps/ablation_intersite-d09a31bbcae1b2bb.d: crates/bench/src/bin/ablation_intersite.rs

/root/repo/target/debug/deps/ablation_intersite-d09a31bbcae1b2bb: crates/bench/src/bin/ablation_intersite.rs

crates/bench/src/bin/ablation_intersite.rs:
