/root/repo/target/debug/deps/ablation_intersite-09ad75fa7ed68b8f.d: crates/bench/src/bin/ablation_intersite.rs Cargo.toml

/root/repo/target/debug/deps/libablation_intersite-09ad75fa7ed68b8f.rmeta: crates/bench/src/bin/ablation_intersite.rs Cargo.toml

crates/bench/src/bin/ablation_intersite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
