/root/repo/target/debug/deps/table5_wait_util_initial-01dacd2bc0e3dcbc.d: crates/bench/src/bin/table5_wait_util_initial.rs

/root/repo/target/debug/deps/table5_wait_util_initial-01dacd2bc0e3dcbc: crates/bench/src/bin/table5_wait_util_initial.rs

crates/bench/src/bin/table5_wait_util_initial.rs:
