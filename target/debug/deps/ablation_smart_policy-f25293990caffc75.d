/root/repo/target/debug/deps/ablation_smart_policy-f25293990caffc75.d: crates/bench/src/bin/ablation_smart_policy.rs Cargo.toml

/root/repo/target/debug/deps/libablation_smart_policy-f25293990caffc75.rmeta: crates/bench/src/bin/ablation_smart_policy.rs Cargo.toml

crates/bench/src/bin/ablation_smart_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
