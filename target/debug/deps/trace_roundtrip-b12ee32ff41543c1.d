/root/repo/target/debug/deps/trace_roundtrip-b12ee32ff41543c1.d: tests/trace_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_roundtrip-b12ee32ff41543c1.rmeta: tests/trace_roundtrip.rs Cargo.toml

tests/trace_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
