/root/repo/target/debug/deps/golden_trace-3432ef93e1e338cf.d: tests/golden_trace.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_trace-3432ef93e1e338cf.rmeta: tests/golden_trace.rs Cargo.toml

tests/golden_trace.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
