/root/repo/target/debug/deps/fig3_waste_breakdown-1ec7ae153ce71474.d: crates/bench/src/bin/fig3_waste_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_waste_breakdown-1ec7ae153ce71474.rmeta: crates/bench/src/bin/fig3_waste_breakdown.rs Cargo.toml

crates/bench/src/bin/fig3_waste_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
