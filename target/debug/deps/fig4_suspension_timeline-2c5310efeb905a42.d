/root/repo/target/debug/deps/fig4_suspension_timeline-2c5310efeb905a42.d: crates/bench/src/bin/fig4_suspension_timeline.rs

/root/repo/target/debug/deps/fig4_suspension_timeline-2c5310efeb905a42: crates/bench/src/bin/fig4_suspension_timeline.rs

crates/bench/src/bin/fig4_suspension_timeline.rs:
