/root/repo/target/debug/deps/netbatch_bench-1b0a92538af661b8.d: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libnetbatch_bench-1b0a92538af661b8.rmeta: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/runner.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
crates/bench/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
