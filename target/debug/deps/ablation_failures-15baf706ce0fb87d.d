/root/repo/target/debug/deps/ablation_failures-15baf706ce0fb87d.d: crates/bench/src/bin/ablation_failures.rs

/root/repo/target/debug/deps/ablation_failures-15baf706ce0fb87d: crates/bench/src/bin/ablation_failures.rs

crates/bench/src/bin/ablation_failures.rs:
