/root/repo/target/debug/deps/ablation_smart_policy-d30600c4effde74c.d: crates/bench/src/bin/ablation_smart_policy.rs

/root/repo/target/debug/deps/ablation_smart_policy-d30600c4effde74c: crates/bench/src/bin/ablation_smart_policy.rs

crates/bench/src/bin/ablation_smart_policy.rs:
