/root/repo/target/debug/deps/ablation_staleness-592f557b4a1fe3d3.d: crates/bench/src/bin/ablation_staleness.rs Cargo.toml

/root/repo/target/debug/deps/libablation_staleness-592f557b4a1fe3d3.rmeta: crates/bench/src/bin/ablation_staleness.rs Cargo.toml

crates/bench/src/bin/ablation_staleness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
