/root/repo/target/debug/deps/netbatch_sim_engine-24c7dcd23efddbf8.d: crates/sim-engine/src/lib.rs crates/sim-engine/src/executor.rs crates/sim-engine/src/observe.rs crates/sim-engine/src/queue.rs crates/sim-engine/src/rng.rs crates/sim-engine/src/sampler.rs crates/sim-engine/src/time.rs

/root/repo/target/debug/deps/netbatch_sim_engine-24c7dcd23efddbf8: crates/sim-engine/src/lib.rs crates/sim-engine/src/executor.rs crates/sim-engine/src/observe.rs crates/sim-engine/src/queue.rs crates/sim-engine/src/rng.rs crates/sim-engine/src/sampler.rs crates/sim-engine/src/time.rs

crates/sim-engine/src/lib.rs:
crates/sim-engine/src/executor.rs:
crates/sim-engine/src/observe.rs:
crates/sim-engine/src/queue.rs:
crates/sim-engine/src/rng.rs:
crates/sim-engine/src/sampler.rs:
crates/sim-engine/src/time.rs:
