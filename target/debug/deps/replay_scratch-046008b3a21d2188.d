/root/repo/target/debug/deps/replay_scratch-046008b3a21d2188.d: tests/replay_scratch.rs

/root/repo/target/debug/deps/replay_scratch-046008b3a21d2188: tests/replay_scratch.rs

tests/replay_scratch.rs:
