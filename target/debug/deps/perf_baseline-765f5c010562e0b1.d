/root/repo/target/debug/deps/perf_baseline-765f5c010562e0b1.d: crates/bench/src/bin/perf_baseline.rs

/root/repo/target/debug/deps/perf_baseline-765f5c010562e0b1: crates/bench/src/bin/perf_baseline.rs

crates/bench/src/bin/perf_baseline.rs:
