/root/repo/target/debug/deps/netbatch_core-6d2a3bf95aebf2ce.d: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/faults.rs crates/core/src/observer.rs crates/core/src/policy/mod.rs crates/core/src/policy/initial.rs crates/core/src/policy/resched.rs crates/core/src/simulator.rs Cargo.toml

/root/repo/target/debug/deps/libnetbatch_core-6d2a3bf95aebf2ce.rmeta: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/faults.rs crates/core/src/observer.rs crates/core/src/policy/mod.rs crates/core/src/policy/initial.rs crates/core/src/policy/resched.rs crates/core/src/simulator.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/experiment.rs:
crates/core/src/faults.rs:
crates/core/src/observer.rs:
crates/core/src/policy/mod.rs:
crates/core/src/policy/initial.rs:
crates/core/src/policy/resched.rs:
crates/core/src/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
