/root/repo/target/debug/deps/paper_shape-4c98e10c0c166af8.d: tests/paper_shape.rs

/root/repo/target/debug/deps/paper_shape-4c98e10c0c166af8: tests/paper_shape.rs

tests/paper_shape.rs:
