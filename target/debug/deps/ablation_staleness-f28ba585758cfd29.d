/root/repo/target/debug/deps/ablation_staleness-f28ba585758cfd29.d: crates/bench/src/bin/ablation_staleness.rs

/root/repo/target/debug/deps/ablation_staleness-f28ba585758cfd29: crates/bench/src/bin/ablation_staleness.rs

crates/bench/src/bin/ablation_staleness.rs:
