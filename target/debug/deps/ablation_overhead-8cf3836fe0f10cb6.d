/root/repo/target/debug/deps/ablation_overhead-8cf3836fe0f10cb6.d: crates/bench/src/bin/ablation_overhead.rs

/root/repo/target/debug/deps/ablation_overhead-8cf3836fe0f10cb6: crates/bench/src/bin/ablation_overhead.rs

crates/bench/src/bin/ablation_overhead.rs:
