/root/repo/target/debug/deps/chaos-50997795367097a2.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-50997795367097a2: tests/chaos.rs

tests/chaos.rs:
