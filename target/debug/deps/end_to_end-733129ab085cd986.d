/root/repo/target/debug/deps/end_to_end-733129ab085cd986.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-733129ab085cd986: tests/end_to_end.rs

tests/end_to_end.rs:
