/root/repo/target/debug/deps/table2_high_load-b51b5b0c6c1eb688.d: crates/bench/src/bin/table2_high_load.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_high_load-b51b5b0c6c1eb688.rmeta: crates/bench/src/bin/table2_high_load.rs Cargo.toml

crates/bench/src/bin/table2_high_load.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
