/root/repo/target/debug/deps/netbatch_metrics-458d13e1ade3d7d6.d: crates/metrics/src/lib.rs crates/metrics/src/cdf.rs crates/metrics/src/histogram.rs crates/metrics/src/summary.rs crates/metrics/src/table.rs crates/metrics/src/timeseries.rs crates/metrics/src/waste.rs Cargo.toml

/root/repo/target/debug/deps/libnetbatch_metrics-458d13e1ade3d7d6.rmeta: crates/metrics/src/lib.rs crates/metrics/src/cdf.rs crates/metrics/src/histogram.rs crates/metrics/src/summary.rs crates/metrics/src/table.rs crates/metrics/src/timeseries.rs crates/metrics/src/waste.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/cdf.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/table.rs:
crates/metrics/src/timeseries.rs:
crates/metrics/src/waste.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
