/root/repo/target/debug/deps/ablation_queue_policy-892445624f2284b7.d: crates/bench/src/bin/ablation_queue_policy.rs

/root/repo/target/debug/deps/ablation_queue_policy-892445624f2284b7: crates/bench/src/bin/ablation_queue_policy.rs

crates/bench/src/bin/ablation_queue_policy.rs:
