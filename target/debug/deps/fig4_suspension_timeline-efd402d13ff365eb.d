/root/repo/target/debug/deps/fig4_suspension_timeline-efd402d13ff365eb.d: crates/bench/src/bin/fig4_suspension_timeline.rs

/root/repo/target/debug/deps/fig4_suspension_timeline-efd402d13ff365eb: crates/bench/src/bin/fig4_suspension_timeline.rs

crates/bench/src/bin/fig4_suspension_timeline.rs:
