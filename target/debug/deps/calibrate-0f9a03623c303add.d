/root/repo/target/debug/deps/calibrate-0f9a03623c303add.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-0f9a03623c303add: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
