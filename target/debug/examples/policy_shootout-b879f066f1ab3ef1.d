/root/repo/target/debug/examples/policy_shootout-b879f066f1ab3ef1.d: examples/policy_shootout.rs

/root/repo/target/debug/examples/policy_shootout-b879f066f1ab3ef1: examples/policy_shootout.rs

examples/policy_shootout.rs:
