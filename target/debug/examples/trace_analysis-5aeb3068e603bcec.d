/root/repo/target/debug/examples/trace_analysis-5aeb3068e603bcec.d: examples/trace_analysis.rs

/root/repo/target/debug/examples/trace_analysis-5aeb3068e603bcec: examples/trace_analysis.rs

examples/trace_analysis.rs:
