/root/repo/target/debug/examples/quickstart-1a729b5b4d6521eb.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1a729b5b4d6521eb: examples/quickstart.rs

examples/quickstart.rs:
