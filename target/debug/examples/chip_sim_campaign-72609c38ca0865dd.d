/root/repo/target/debug/examples/chip_sim_campaign-72609c38ca0865dd.d: examples/chip_sim_campaign.rs Cargo.toml

/root/repo/target/debug/examples/libchip_sim_campaign-72609c38ca0865dd.rmeta: examples/chip_sim_campaign.rs Cargo.toml

examples/chip_sim_campaign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
