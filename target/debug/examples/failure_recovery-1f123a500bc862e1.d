/root/repo/target/debug/examples/failure_recovery-1f123a500bc862e1.d: examples/failure_recovery.rs

/root/repo/target/debug/examples/failure_recovery-1f123a500bc862e1: examples/failure_recovery.rs

examples/failure_recovery.rs:
