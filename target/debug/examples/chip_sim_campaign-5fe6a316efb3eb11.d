/root/repo/target/debug/examples/chip_sim_campaign-5fe6a316efb3eb11.d: examples/chip_sim_campaign.rs

/root/repo/target/debug/examples/chip_sim_campaign-5fe6a316efb3eb11: examples/chip_sim_campaign.rs

examples/chip_sim_campaign.rs:
