/root/repo/target/debug/examples/burst_storm-824809d1e455f8c2.d: examples/burst_storm.rs

/root/repo/target/debug/examples/burst_storm-824809d1e455f8c2: examples/burst_storm.rs

examples/burst_storm.rs:
