/root/repo/target/debug/examples/burst_storm-8fce13c0505d1708.d: examples/burst_storm.rs Cargo.toml

/root/repo/target/debug/examples/libburst_storm-8fce13c0505d1708.rmeta: examples/burst_storm.rs Cargo.toml

examples/burst_storm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
