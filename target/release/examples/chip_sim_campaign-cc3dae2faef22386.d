/root/repo/target/release/examples/chip_sim_campaign-cc3dae2faef22386.d: examples/chip_sim_campaign.rs

/root/repo/target/release/examples/chip_sim_campaign-cc3dae2faef22386: examples/chip_sim_campaign.rs

examples/chip_sim_campaign.rs:
