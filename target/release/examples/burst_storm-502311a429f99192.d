/root/repo/target/release/examples/burst_storm-502311a429f99192.d: examples/burst_storm.rs

/root/repo/target/release/examples/burst_storm-502311a429f99192: examples/burst_storm.rs

examples/burst_storm.rs:
