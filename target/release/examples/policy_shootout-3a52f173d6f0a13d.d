/root/repo/target/release/examples/policy_shootout-3a52f173d6f0a13d.d: examples/policy_shootout.rs

/root/repo/target/release/examples/policy_shootout-3a52f173d6f0a13d: examples/policy_shootout.rs

examples/policy_shootout.rs:
