/root/repo/target/release/examples/failure_recovery-9dee31cd99e1827a.d: examples/failure_recovery.rs

/root/repo/target/release/examples/failure_recovery-9dee31cd99e1827a: examples/failure_recovery.rs

examples/failure_recovery.rs:
