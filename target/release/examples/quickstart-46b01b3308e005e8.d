/root/repo/target/release/examples/quickstart-46b01b3308e005e8.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-46b01b3308e005e8: examples/quickstart.rs

examples/quickstart.rs:
