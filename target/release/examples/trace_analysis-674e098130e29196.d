/root/repo/target/release/examples/trace_analysis-674e098130e29196.d: examples/trace_analysis.rs

/root/repo/target/release/examples/trace_analysis-674e098130e29196: examples/trace_analysis.rs

examples/trace_analysis.rs:
