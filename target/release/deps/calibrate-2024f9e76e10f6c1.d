/root/repo/target/release/deps/calibrate-2024f9e76e10f6c1.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-2024f9e76e10f6c1: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
