/root/repo/target/release/deps/table3_util_initial-3e2fda3bdb3b8532.d: crates/bench/src/bin/table3_util_initial.rs

/root/repo/target/release/deps/table3_util_initial-3e2fda3bdb3b8532: crates/bench/src/bin/table3_util_initial.rs

crates/bench/src/bin/table3_util_initial.rs:
