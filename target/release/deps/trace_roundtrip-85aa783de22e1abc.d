/root/repo/target/release/deps/trace_roundtrip-85aa783de22e1abc.d: tests/trace_roundtrip.rs

/root/repo/target/release/deps/trace_roundtrip-85aa783de22e1abc: tests/trace_roundtrip.rs

tests/trace_roundtrip.rs:
