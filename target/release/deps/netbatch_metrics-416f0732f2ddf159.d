/root/repo/target/release/deps/netbatch_metrics-416f0732f2ddf159.d: crates/metrics/src/lib.rs crates/metrics/src/cdf.rs crates/metrics/src/histogram.rs crates/metrics/src/summary.rs crates/metrics/src/table.rs crates/metrics/src/timeseries.rs crates/metrics/src/waste.rs

/root/repo/target/release/deps/libnetbatch_metrics-416f0732f2ddf159.rlib: crates/metrics/src/lib.rs crates/metrics/src/cdf.rs crates/metrics/src/histogram.rs crates/metrics/src/summary.rs crates/metrics/src/table.rs crates/metrics/src/timeseries.rs crates/metrics/src/waste.rs

/root/repo/target/release/deps/libnetbatch_metrics-416f0732f2ddf159.rmeta: crates/metrics/src/lib.rs crates/metrics/src/cdf.rs crates/metrics/src/histogram.rs crates/metrics/src/summary.rs crates/metrics/src/table.rs crates/metrics/src/timeseries.rs crates/metrics/src/waste.rs

crates/metrics/src/lib.rs:
crates/metrics/src/cdf.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/table.rs:
crates/metrics/src/timeseries.rs:
crates/metrics/src/waste.rs:
