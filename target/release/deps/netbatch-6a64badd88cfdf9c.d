/root/repo/target/release/deps/netbatch-6a64badd88cfdf9c.d: src/bin/netbatch.rs

/root/repo/target/release/deps/netbatch-6a64badd88cfdf9c: src/bin/netbatch.rs

src/bin/netbatch.rs:
