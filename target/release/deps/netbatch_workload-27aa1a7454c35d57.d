/root/repo/target/release/deps/netbatch_workload-27aa1a7454c35d57.d: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/distributions.rs crates/workload/src/generator/mod.rs crates/workload/src/generator/affinity.rs crates/workload/src/generator/arrivals.rs crates/workload/src/generator/jobs.rs crates/workload/src/io.rs crates/workload/src/scenarios.rs crates/workload/src/trace.rs

/root/repo/target/release/deps/netbatch_workload-27aa1a7454c35d57: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/distributions.rs crates/workload/src/generator/mod.rs crates/workload/src/generator/affinity.rs crates/workload/src/generator/arrivals.rs crates/workload/src/generator/jobs.rs crates/workload/src/io.rs crates/workload/src/scenarios.rs crates/workload/src/trace.rs

crates/workload/src/lib.rs:
crates/workload/src/analysis.rs:
crates/workload/src/distributions.rs:
crates/workload/src/generator/mod.rs:
crates/workload/src/generator/affinity.rs:
crates/workload/src/generator/arrivals.rs:
crates/workload/src/generator/jobs.rs:
crates/workload/src/io.rs:
crates/workload/src/scenarios.rs:
crates/workload/src/trace.rs:
