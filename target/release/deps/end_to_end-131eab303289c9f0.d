/root/repo/target/release/deps/end_to_end-131eab303289c9f0.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-131eab303289c9f0: tests/end_to_end.rs

tests/end_to_end.rs:
