/root/repo/target/release/deps/table2_high_load-4aff885aad9df52b.d: crates/bench/src/bin/table2_high_load.rs

/root/repo/target/release/deps/table2_high_load-4aff885aad9df52b: crates/bench/src/bin/table2_high_load.rs

crates/bench/src/bin/table2_high_load.rs:
