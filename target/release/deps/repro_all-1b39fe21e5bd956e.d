/root/repo/target/release/deps/repro_all-1b39fe21e5bd956e.d: crates/bench/src/bin/repro_all.rs

/root/repo/target/release/deps/repro_all-1b39fe21e5bd956e: crates/bench/src/bin/repro_all.rs

crates/bench/src/bin/repro_all.rs:
