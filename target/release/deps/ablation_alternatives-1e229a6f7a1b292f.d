/root/repo/target/release/deps/ablation_alternatives-1e229a6f7a1b292f.d: crates/bench/src/bin/ablation_alternatives.rs

/root/repo/target/release/deps/ablation_alternatives-1e229a6f7a1b292f: crates/bench/src/bin/ablation_alternatives.rs

crates/bench/src/bin/ablation_alternatives.rs:
