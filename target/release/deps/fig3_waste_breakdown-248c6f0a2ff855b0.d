/root/repo/target/release/deps/fig3_waste_breakdown-248c6f0a2ff855b0.d: crates/bench/src/bin/fig3_waste_breakdown.rs

/root/repo/target/release/deps/fig3_waste_breakdown-248c6f0a2ff855b0: crates/bench/src/bin/fig3_waste_breakdown.rs

crates/bench/src/bin/fig3_waste_breakdown.rs:
