/root/repo/target/release/deps/netbatch_cluster-0de2bafd1fee4c30.d: crates/cluster/src/lib.rs crates/cluster/src/ids.rs crates/cluster/src/index.rs crates/cluster/src/job.rs crates/cluster/src/machine.rs crates/cluster/src/pool.rs crates/cluster/src/priority.rs crates/cluster/src/snapshot.rs

/root/repo/target/release/deps/libnetbatch_cluster-0de2bafd1fee4c30.rlib: crates/cluster/src/lib.rs crates/cluster/src/ids.rs crates/cluster/src/index.rs crates/cluster/src/job.rs crates/cluster/src/machine.rs crates/cluster/src/pool.rs crates/cluster/src/priority.rs crates/cluster/src/snapshot.rs

/root/repo/target/release/deps/libnetbatch_cluster-0de2bafd1fee4c30.rmeta: crates/cluster/src/lib.rs crates/cluster/src/ids.rs crates/cluster/src/index.rs crates/cluster/src/job.rs crates/cluster/src/machine.rs crates/cluster/src/pool.rs crates/cluster/src/priority.rs crates/cluster/src/snapshot.rs

crates/cluster/src/lib.rs:
crates/cluster/src/ids.rs:
crates/cluster/src/index.rs:
crates/cluster/src/job.rs:
crates/cluster/src/machine.rs:
crates/cluster/src/pool.rs:
crates/cluster/src/priority.rs:
crates/cluster/src/snapshot.rs:
