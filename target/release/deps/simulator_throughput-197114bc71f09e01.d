/root/repo/target/release/deps/simulator_throughput-197114bc71f09e01.d: crates/bench/benches/simulator_throughput.rs

/root/repo/target/release/deps/simulator_throughput-197114bc71f09e01: crates/bench/benches/simulator_throughput.rs

crates/bench/benches/simulator_throughput.rs:
