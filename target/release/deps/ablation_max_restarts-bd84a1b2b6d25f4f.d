/root/repo/target/release/deps/ablation_max_restarts-bd84a1b2b6d25f4f.d: crates/bench/src/bin/ablation_max_restarts.rs

/root/repo/target/release/deps/ablation_max_restarts-bd84a1b2b6d25f4f: crates/bench/src/bin/ablation_max_restarts.rs

crates/bench/src/bin/ablation_max_restarts.rs:
