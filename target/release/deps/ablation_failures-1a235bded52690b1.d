/root/repo/target/release/deps/ablation_failures-1a235bded52690b1.d: crates/bench/src/bin/ablation_failures.rs

/root/repo/target/release/deps/ablation_failures-1a235bded52690b1: crates/bench/src/bin/ablation_failures.rs

crates/bench/src/bin/ablation_failures.rs:
