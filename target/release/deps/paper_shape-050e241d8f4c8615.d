/root/repo/target/release/deps/paper_shape-050e241d8f4c8615.d: tests/paper_shape.rs

/root/repo/target/release/deps/paper_shape-050e241d8f4c8615: tests/paper_shape.rs

tests/paper_shape.rs:
