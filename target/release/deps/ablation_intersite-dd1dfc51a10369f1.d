/root/repo/target/release/deps/ablation_intersite-dd1dfc51a10369f1.d: crates/bench/src/bin/ablation_intersite.rs

/root/repo/target/release/deps/ablation_intersite-dd1dfc51a10369f1: crates/bench/src/bin/ablation_intersite.rs

crates/bench/src/bin/ablation_intersite.rs:
