/root/repo/target/release/deps/table4_wait_resched-b571f5c2a59a96e2.d: crates/bench/src/bin/table4_wait_resched.rs

/root/repo/target/release/deps/table4_wait_resched-b571f5c2a59a96e2: crates/bench/src/bin/table4_wait_resched.rs

crates/bench/src/bin/table4_wait_resched.rs:
