/root/repo/target/release/deps/table2_high_load-4c866444bcc46fbf.d: crates/bench/src/bin/table2_high_load.rs

/root/repo/target/release/deps/table2_high_load-4c866444bcc46fbf: crates/bench/src/bin/table2_high_load.rs

crates/bench/src/bin/table2_high_load.rs:
