/root/repo/target/release/deps/ablation_smart_policy-a5f21b2c95d0c37c.d: crates/bench/src/bin/ablation_smart_policy.rs

/root/repo/target/release/deps/ablation_smart_policy-a5f21b2c95d0c37c: crates/bench/src/bin/ablation_smart_policy.rs

crates/bench/src/bin/ablation_smart_policy.rs:
