/root/repo/target/release/deps/ablation_queue_policy-c550b25c2109a56a.d: crates/bench/src/bin/ablation_queue_policy.rs

/root/repo/target/release/deps/ablation_queue_policy-c550b25c2109a56a: crates/bench/src/bin/ablation_queue_policy.rs

crates/bench/src/bin/ablation_queue_policy.rs:
