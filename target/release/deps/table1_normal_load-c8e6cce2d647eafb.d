/root/repo/target/release/deps/table1_normal_load-c8e6cce2d647eafb.d: crates/bench/src/bin/table1_normal_load.rs

/root/repo/target/release/deps/table1_normal_load-c8e6cce2d647eafb: crates/bench/src/bin/table1_normal_load.rs

crates/bench/src/bin/table1_normal_load.rs:
