/root/repo/target/release/deps/netbatch_cluster-3d14d4e858393669.d: crates/cluster/src/lib.rs crates/cluster/src/ids.rs crates/cluster/src/index.rs crates/cluster/src/job.rs crates/cluster/src/machine.rs crates/cluster/src/pool.rs crates/cluster/src/priority.rs crates/cluster/src/snapshot.rs

/root/repo/target/release/deps/netbatch_cluster-3d14d4e858393669: crates/cluster/src/lib.rs crates/cluster/src/ids.rs crates/cluster/src/index.rs crates/cluster/src/job.rs crates/cluster/src/machine.rs crates/cluster/src/pool.rs crates/cluster/src/priority.rs crates/cluster/src/snapshot.rs

crates/cluster/src/lib.rs:
crates/cluster/src/ids.rs:
crates/cluster/src/index.rs:
crates/cluster/src/job.rs:
crates/cluster/src/machine.rs:
crates/cluster/src/pool.rs:
crates/cluster/src/priority.rs:
crates/cluster/src/snapshot.rs:
