/root/repo/target/release/deps/event_queue-a14a433426d3cab9.d: crates/bench/benches/event_queue.rs

/root/repo/target/release/deps/event_queue-a14a433426d3cab9: crates/bench/benches/event_queue.rs

crates/bench/benches/event_queue.rs:
