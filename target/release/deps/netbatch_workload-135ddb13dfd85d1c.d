/root/repo/target/release/deps/netbatch_workload-135ddb13dfd85d1c.d: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/distributions.rs crates/workload/src/generator/mod.rs crates/workload/src/generator/affinity.rs crates/workload/src/generator/arrivals.rs crates/workload/src/generator/jobs.rs crates/workload/src/io.rs crates/workload/src/scenarios.rs crates/workload/src/trace.rs

/root/repo/target/release/deps/libnetbatch_workload-135ddb13dfd85d1c.rlib: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/distributions.rs crates/workload/src/generator/mod.rs crates/workload/src/generator/affinity.rs crates/workload/src/generator/arrivals.rs crates/workload/src/generator/jobs.rs crates/workload/src/io.rs crates/workload/src/scenarios.rs crates/workload/src/trace.rs

/root/repo/target/release/deps/libnetbatch_workload-135ddb13dfd85d1c.rmeta: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/distributions.rs crates/workload/src/generator/mod.rs crates/workload/src/generator/affinity.rs crates/workload/src/generator/arrivals.rs crates/workload/src/generator/jobs.rs crates/workload/src/io.rs crates/workload/src/scenarios.rs crates/workload/src/trace.rs

crates/workload/src/lib.rs:
crates/workload/src/analysis.rs:
crates/workload/src/distributions.rs:
crates/workload/src/generator/mod.rs:
crates/workload/src/generator/affinity.rs:
crates/workload/src/generator/arrivals.rs:
crates/workload/src/generator/jobs.rs:
crates/workload/src/io.rs:
crates/workload/src/scenarios.rs:
crates/workload/src/trace.rs:
