/root/repo/target/release/deps/ablation_overhead-4507f533614866d6.d: crates/bench/src/bin/ablation_overhead.rs

/root/repo/target/release/deps/ablation_overhead-4507f533614866d6: crates/bench/src/bin/ablation_overhead.rs

crates/bench/src/bin/ablation_overhead.rs:
