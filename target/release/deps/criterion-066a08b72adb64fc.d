/root/repo/target/release/deps/criterion-066a08b72adb64fc.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-066a08b72adb64fc: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
