/root/repo/target/release/deps/event_queue-0430a1c13e8cf75e.d: crates/bench/benches/event_queue.rs

/root/repo/target/release/deps/event_queue-0430a1c13e8cf75e: crates/bench/benches/event_queue.rs

crates/bench/benches/event_queue.rs:
