/root/repo/target/release/deps/fig2_suspension_cdf-787e2834f6640ab9.d: crates/bench/src/bin/fig2_suspension_cdf.rs

/root/repo/target/release/deps/fig2_suspension_cdf-787e2834f6640ab9: crates/bench/src/bin/fig2_suspension_cdf.rs

crates/bench/src/bin/fig2_suspension_cdf.rs:
