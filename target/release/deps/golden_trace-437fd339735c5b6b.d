/root/repo/target/release/deps/golden_trace-437fd339735c5b6b.d: tests/golden_trace.rs

/root/repo/target/release/deps/golden_trace-437fd339735c5b6b: tests/golden_trace.rs

tests/golden_trace.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
