/root/repo/target/release/deps/table1_normal_load-c776b45d4756942b.d: crates/bench/src/bin/table1_normal_load.rs

/root/repo/target/release/deps/table1_normal_load-c776b45d4756942b: crates/bench/src/bin/table1_normal_load.rs

crates/bench/src/bin/table1_normal_load.rs:
