/root/repo/target/release/deps/netbatch_core-46c21225cdffea8b.d: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/observer.rs crates/core/src/policy/mod.rs crates/core/src/policy/initial.rs crates/core/src/policy/resched.rs crates/core/src/simulator.rs

/root/repo/target/release/deps/netbatch_core-46c21225cdffea8b: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/observer.rs crates/core/src/policy/mod.rs crates/core/src/policy/initial.rs crates/core/src/policy/resched.rs crates/core/src/simulator.rs

crates/core/src/lib.rs:
crates/core/src/experiment.rs:
crates/core/src/observer.rs:
crates/core/src/policy/mod.rs:
crates/core/src/policy/initial.rs:
crates/core/src/policy/resched.rs:
crates/core/src/simulator.rs:
