/root/repo/target/release/deps/netbatch-647e97140b87d98f.d: src/lib.rs

/root/repo/target/release/deps/netbatch-647e97140b87d98f: src/lib.rs

src/lib.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
