/root/repo/target/release/deps/netbatch_sim_engine-24c0f09cf8fbc47b.d: crates/sim-engine/src/lib.rs crates/sim-engine/src/executor.rs crates/sim-engine/src/observe.rs crates/sim-engine/src/queue.rs crates/sim-engine/src/rng.rs crates/sim-engine/src/sampler.rs crates/sim-engine/src/time.rs

/root/repo/target/release/deps/libnetbatch_sim_engine-24c0f09cf8fbc47b.rlib: crates/sim-engine/src/lib.rs crates/sim-engine/src/executor.rs crates/sim-engine/src/observe.rs crates/sim-engine/src/queue.rs crates/sim-engine/src/rng.rs crates/sim-engine/src/sampler.rs crates/sim-engine/src/time.rs

/root/repo/target/release/deps/libnetbatch_sim_engine-24c0f09cf8fbc47b.rmeta: crates/sim-engine/src/lib.rs crates/sim-engine/src/executor.rs crates/sim-engine/src/observe.rs crates/sim-engine/src/queue.rs crates/sim-engine/src/rng.rs crates/sim-engine/src/sampler.rs crates/sim-engine/src/time.rs

crates/sim-engine/src/lib.rs:
crates/sim-engine/src/executor.rs:
crates/sim-engine/src/observe.rs:
crates/sim-engine/src/queue.rs:
crates/sim-engine/src/rng.rs:
crates/sim-engine/src/sampler.rs:
crates/sim-engine/src/time.rs:
