/root/repo/target/release/deps/table5_wait_util_initial-c3f2a500d58a76b4.d: crates/bench/src/bin/table5_wait_util_initial.rs

/root/repo/target/release/deps/table5_wait_util_initial-c3f2a500d58a76b4: crates/bench/src/bin/table5_wait_util_initial.rs

crates/bench/src/bin/table5_wait_util_initial.rs:
