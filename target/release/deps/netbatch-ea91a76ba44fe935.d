/root/repo/target/release/deps/netbatch-ea91a76ba44fe935.d: src/bin/netbatch.rs

/root/repo/target/release/deps/netbatch-ea91a76ba44fe935: src/bin/netbatch.rs

src/bin/netbatch.rs:
