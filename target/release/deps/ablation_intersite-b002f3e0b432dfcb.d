/root/repo/target/release/deps/ablation_intersite-b002f3e0b432dfcb.d: crates/bench/src/bin/ablation_intersite.rs

/root/repo/target/release/deps/ablation_intersite-b002f3e0b432dfcb: crates/bench/src/bin/ablation_intersite.rs

crates/bench/src/bin/ablation_intersite.rs:
