/root/repo/target/release/deps/lifecycle_invariants-1bb9c195dbf9e16c.d: tests/lifecycle_invariants.rs

/root/repo/target/release/deps/lifecycle_invariants-1bb9c195dbf9e16c: tests/lifecycle_invariants.rs

tests/lifecycle_invariants.rs:
