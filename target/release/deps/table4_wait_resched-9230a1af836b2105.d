/root/repo/target/release/deps/table4_wait_resched-9230a1af836b2105.d: crates/bench/src/bin/table4_wait_resched.rs

/root/repo/target/release/deps/table4_wait_resched-9230a1af836b2105: crates/bench/src/bin/table4_wait_resched.rs

crates/bench/src/bin/table4_wait_resched.rs:
