/root/repo/target/release/deps/netbatch_bench-0b487964fe8c67d6.d: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/netbatch_bench-0b487964fe8c67d6: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
crates/bench/src/runner.rs:
