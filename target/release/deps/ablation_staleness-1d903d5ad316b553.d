/root/repo/target/release/deps/ablation_staleness-1d903d5ad316b553.d: crates/bench/src/bin/ablation_staleness.rs

/root/repo/target/release/deps/ablation_staleness-1d903d5ad316b553: crates/bench/src/bin/ablation_staleness.rs

crates/bench/src/bin/ablation_staleness.rs:
