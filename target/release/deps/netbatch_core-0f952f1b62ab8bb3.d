/root/repo/target/release/deps/netbatch_core-0f952f1b62ab8bb3.d: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/faults.rs crates/core/src/observer.rs crates/core/src/policy/mod.rs crates/core/src/policy/initial.rs crates/core/src/policy/resched.rs crates/core/src/simulator.rs

/root/repo/target/release/deps/libnetbatch_core-0f952f1b62ab8bb3.rlib: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/faults.rs crates/core/src/observer.rs crates/core/src/policy/mod.rs crates/core/src/policy/initial.rs crates/core/src/policy/resched.rs crates/core/src/simulator.rs

/root/repo/target/release/deps/libnetbatch_core-0f952f1b62ab8bb3.rmeta: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/faults.rs crates/core/src/observer.rs crates/core/src/policy/mod.rs crates/core/src/policy/initial.rs crates/core/src/policy/resched.rs crates/core/src/simulator.rs

crates/core/src/lib.rs:
crates/core/src/experiment.rs:
crates/core/src/faults.rs:
crates/core/src/observer.rs:
crates/core/src/policy/mod.rs:
crates/core/src/policy/initial.rs:
crates/core/src/policy/resched.rs:
crates/core/src/simulator.rs:
