/root/repo/target/release/deps/ablation_failures-04a7d7d611595e88.d: crates/bench/src/bin/ablation_failures.rs

/root/repo/target/release/deps/ablation_failures-04a7d7d611595e88: crates/bench/src/bin/ablation_failures.rs

crates/bench/src/bin/ablation_failures.rs:
