/root/repo/target/release/deps/netbatch_bench-0113325f927186f4.d: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/libnetbatch_bench-0113325f927186f4.rlib: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/libnetbatch_bench-0113325f927186f4.rmeta: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
crates/bench/src/runner.rs:
