/root/repo/target/release/deps/table5_wait_util_initial-39a7d12062311d34.d: crates/bench/src/bin/table5_wait_util_initial.rs

/root/repo/target/release/deps/table5_wait_util_initial-39a7d12062311d34: crates/bench/src/bin/table5_wait_util_initial.rs

crates/bench/src/bin/table5_wait_util_initial.rs:
