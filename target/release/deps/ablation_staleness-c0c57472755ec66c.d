/root/repo/target/release/deps/ablation_staleness-c0c57472755ec66c.d: crates/bench/src/bin/ablation_staleness.rs

/root/repo/target/release/deps/ablation_staleness-c0c57472755ec66c: crates/bench/src/bin/ablation_staleness.rs

crates/bench/src/bin/ablation_staleness.rs:
