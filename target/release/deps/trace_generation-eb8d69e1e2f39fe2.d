/root/repo/target/release/deps/trace_generation-eb8d69e1e2f39fe2.d: crates/bench/benches/trace_generation.rs

/root/repo/target/release/deps/trace_generation-eb8d69e1e2f39fe2: crates/bench/benches/trace_generation.rs

crates/bench/benches/trace_generation.rs:
