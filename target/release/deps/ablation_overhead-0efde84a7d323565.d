/root/repo/target/release/deps/ablation_overhead-0efde84a7d323565.d: crates/bench/src/bin/ablation_overhead.rs

/root/repo/target/release/deps/ablation_overhead-0efde84a7d323565: crates/bench/src/bin/ablation_overhead.rs

crates/bench/src/bin/ablation_overhead.rs:
