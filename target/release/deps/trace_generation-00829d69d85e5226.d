/root/repo/target/release/deps/trace_generation-00829d69d85e5226.d: crates/bench/benches/trace_generation.rs

/root/repo/target/release/deps/trace_generation-00829d69d85e5226: crates/bench/benches/trace_generation.rs

crates/bench/benches/trace_generation.rs:
