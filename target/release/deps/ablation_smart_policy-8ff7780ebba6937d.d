/root/repo/target/release/deps/ablation_smart_policy-8ff7780ebba6937d.d: crates/bench/src/bin/ablation_smart_policy.rs

/root/repo/target/release/deps/ablation_smart_policy-8ff7780ebba6937d: crates/bench/src/bin/ablation_smart_policy.rs

crates/bench/src/bin/ablation_smart_policy.rs:
