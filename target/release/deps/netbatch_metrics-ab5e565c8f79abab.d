/root/repo/target/release/deps/netbatch_metrics-ab5e565c8f79abab.d: crates/metrics/src/lib.rs crates/metrics/src/cdf.rs crates/metrics/src/histogram.rs crates/metrics/src/summary.rs crates/metrics/src/table.rs crates/metrics/src/timeseries.rs crates/metrics/src/waste.rs

/root/repo/target/release/deps/netbatch_metrics-ab5e565c8f79abab: crates/metrics/src/lib.rs crates/metrics/src/cdf.rs crates/metrics/src/histogram.rs crates/metrics/src/summary.rs crates/metrics/src/table.rs crates/metrics/src/timeseries.rs crates/metrics/src/waste.rs

crates/metrics/src/lib.rs:
crates/metrics/src/cdf.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/table.rs:
crates/metrics/src/timeseries.rs:
crates/metrics/src/waste.rs:
