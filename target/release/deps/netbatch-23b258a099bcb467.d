/root/repo/target/release/deps/netbatch-23b258a099bcb467.d: src/lib.rs

/root/repo/target/release/deps/libnetbatch-23b258a099bcb467.rlib: src/lib.rs

/root/repo/target/release/deps/libnetbatch-23b258a099bcb467.rmeta: src/lib.rs

src/lib.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
