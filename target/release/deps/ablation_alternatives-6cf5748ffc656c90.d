/root/repo/target/release/deps/ablation_alternatives-6cf5748ffc656c90.d: crates/bench/src/bin/ablation_alternatives.rs

/root/repo/target/release/deps/ablation_alternatives-6cf5748ffc656c90: crates/bench/src/bin/ablation_alternatives.rs

crates/bench/src/bin/ablation_alternatives.rs:
