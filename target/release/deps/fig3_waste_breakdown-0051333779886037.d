/root/repo/target/release/deps/fig3_waste_breakdown-0051333779886037.d: crates/bench/src/bin/fig3_waste_breakdown.rs

/root/repo/target/release/deps/fig3_waste_breakdown-0051333779886037: crates/bench/src/bin/fig3_waste_breakdown.rs

crates/bench/src/bin/fig3_waste_breakdown.rs:
