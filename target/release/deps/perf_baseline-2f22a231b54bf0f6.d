/root/repo/target/release/deps/perf_baseline-2f22a231b54bf0f6.d: crates/bench/src/bin/perf_baseline.rs

/root/repo/target/release/deps/perf_baseline-2f22a231b54bf0f6: crates/bench/src/bin/perf_baseline.rs

crates/bench/src/bin/perf_baseline.rs:
