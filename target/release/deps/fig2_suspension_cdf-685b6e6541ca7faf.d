/root/repo/target/release/deps/fig2_suspension_cdf-685b6e6541ca7faf.d: crates/bench/src/bin/fig2_suspension_cdf.rs

/root/repo/target/release/deps/fig2_suspension_cdf-685b6e6541ca7faf: crates/bench/src/bin/fig2_suspension_cdf.rs

crates/bench/src/bin/fig2_suspension_cdf.rs:
