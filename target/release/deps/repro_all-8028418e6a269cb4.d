/root/repo/target/release/deps/repro_all-8028418e6a269cb4.d: crates/bench/src/bin/repro_all.rs

/root/repo/target/release/deps/repro_all-8028418e6a269cb4: crates/bench/src/bin/repro_all.rs

crates/bench/src/bin/repro_all.rs:
