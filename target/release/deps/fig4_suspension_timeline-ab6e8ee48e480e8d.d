/root/repo/target/release/deps/fig4_suspension_timeline-ab6e8ee48e480e8d.d: crates/bench/src/bin/fig4_suspension_timeline.rs

/root/repo/target/release/deps/fig4_suspension_timeline-ab6e8ee48e480e8d: crates/bench/src/bin/fig4_suspension_timeline.rs

crates/bench/src/bin/fig4_suspension_timeline.rs:
