/root/repo/target/release/deps/table3_util_initial-be595c0f5b385d10.d: crates/bench/src/bin/table3_util_initial.rs

/root/repo/target/release/deps/table3_util_initial-be595c0f5b385d10: crates/bench/src/bin/table3_util_initial.rs

crates/bench/src/bin/table3_util_initial.rs:
