/root/repo/target/release/deps/determinism-cb26833f14dafb63.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-cb26833f14dafb63: tests/determinism.rs

tests/determinism.rs:
