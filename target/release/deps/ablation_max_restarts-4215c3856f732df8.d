/root/repo/target/release/deps/ablation_max_restarts-4215c3856f732df8.d: crates/bench/src/bin/ablation_max_restarts.rs

/root/repo/target/release/deps/ablation_max_restarts-4215c3856f732df8: crates/bench/src/bin/ablation_max_restarts.rs

crates/bench/src/bin/ablation_max_restarts.rs:
