/root/repo/target/release/deps/simulator_throughput-46090e4b0ed00747.d: crates/bench/benches/simulator_throughput.rs

/root/repo/target/release/deps/simulator_throughput-46090e4b0ed00747: crates/bench/benches/simulator_throughput.rs

crates/bench/benches/simulator_throughput.rs:
