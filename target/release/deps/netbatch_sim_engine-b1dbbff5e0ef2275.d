/root/repo/target/release/deps/netbatch_sim_engine-b1dbbff5e0ef2275.d: crates/sim-engine/src/lib.rs crates/sim-engine/src/executor.rs crates/sim-engine/src/observe.rs crates/sim-engine/src/queue.rs crates/sim-engine/src/rng.rs crates/sim-engine/src/sampler.rs crates/sim-engine/src/time.rs

/root/repo/target/release/deps/netbatch_sim_engine-b1dbbff5e0ef2275: crates/sim-engine/src/lib.rs crates/sim-engine/src/executor.rs crates/sim-engine/src/observe.rs crates/sim-engine/src/queue.rs crates/sim-engine/src/rng.rs crates/sim-engine/src/sampler.rs crates/sim-engine/src/time.rs

crates/sim-engine/src/lib.rs:
crates/sim-engine/src/executor.rs:
crates/sim-engine/src/observe.rs:
crates/sim-engine/src/queue.rs:
crates/sim-engine/src/rng.rs:
crates/sim-engine/src/sampler.rs:
crates/sim-engine/src/time.rs:
