/root/repo/target/release/deps/table2b_high_suspension-70ff0d07c837fa0d.d: crates/bench/src/bin/table2b_high_suspension.rs

/root/repo/target/release/deps/table2b_high_suspension-70ff0d07c837fa0d: crates/bench/src/bin/table2b_high_suspension.rs

crates/bench/src/bin/table2b_high_suspension.rs:
