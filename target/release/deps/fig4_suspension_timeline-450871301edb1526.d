/root/repo/target/release/deps/fig4_suspension_timeline-450871301edb1526.d: crates/bench/src/bin/fig4_suspension_timeline.rs

/root/repo/target/release/deps/fig4_suspension_timeline-450871301edb1526: crates/bench/src/bin/fig4_suspension_timeline.rs

crates/bench/src/bin/fig4_suspension_timeline.rs:
