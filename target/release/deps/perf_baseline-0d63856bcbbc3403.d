/root/repo/target/release/deps/perf_baseline-0d63856bcbbc3403.d: crates/bench/src/bin/perf_baseline.rs

/root/repo/target/release/deps/perf_baseline-0d63856bcbbc3403: crates/bench/src/bin/perf_baseline.rs

crates/bench/src/bin/perf_baseline.rs:
