/root/repo/target/release/deps/observer_conformance-ae46a16e0b48a7e7.d: tests/observer_conformance.rs

/root/repo/target/release/deps/observer_conformance-ae46a16e0b48a7e7: tests/observer_conformance.rs

tests/observer_conformance.rs:
