/root/repo/target/release/deps/ablation_queue_policy-0e8bdcc3c8856c44.d: crates/bench/src/bin/ablation_queue_policy.rs

/root/repo/target/release/deps/ablation_queue_policy-0e8bdcc3c8856c44: crates/bench/src/bin/ablation_queue_policy.rs

crates/bench/src/bin/ablation_queue_policy.rs:
