/root/repo/target/release/deps/calibrate-66299159f3c641b0.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-66299159f3c641b0: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
