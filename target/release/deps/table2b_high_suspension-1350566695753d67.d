/root/repo/target/release/deps/table2b_high_suspension-1350566695753d67.d: crates/bench/src/bin/table2b_high_suspension.rs

/root/repo/target/release/deps/table2b_high_suspension-1350566695753d67: crates/bench/src/bin/table2b_high_suspension.rs

crates/bench/src/bin/table2b_high_suspension.rs:
